"""Parameter-sweep runner for private location prediction experiments.

One :class:`ExperimentRunner` owns a (train, holdout) pair and evaluates
training configurations on the paper's leave-one-out protocol; a
:class:`SweepSpec` names a :class:`repro.core.config.PLPConfig` field and
the values to sweep. Results come back as a :class:`ResultTable` with
plain-text rendering and simple series extraction for plotting.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.core.config import PLPConfig
from repro.core.dpsgd import UserLevelDPSGD
from repro.core.trainer import PrivateLocationPredictor
from repro.data.checkins import CheckinDataset
from repro.data.splitting import sessionize_dataset
from repro.eval.evaluator import LeaveOneOutEvaluator
from repro.exceptions import ConfigError


@dataclass(frozen=True, slots=True)
class SweepSpec:
    """One swept hyper-parameter.

    Attributes:
        field: a :class:`PLPConfig` field name (e.g. ``"grouping_factor"``).
        values: the values to try, in report order.
        label: column label in the rendered table (defaults to ``field``).
    """

    field: str
    values: tuple
    label: str = ""

    def __post_init__(self) -> None:
        if not self.values:
            raise ConfigError("SweepSpec.values must be non-empty")
        if self.field not in PLPConfig.__dataclass_fields__:
            raise ConfigError(f"unknown PLPConfig field {self.field!r}")
        if not self.label:
            object.__setattr__(self, "label", self.field)


@dataclass(frozen=True, slots=True)
class RunOutcome:
    """One training run's results."""

    parameters: dict[str, Any]
    method: str
    hit_rate: dict[int, float]
    steps: int
    epsilon_spent: float
    train_seconds: float

    def hr(self, k: int = 10) -> float:
        """HR@k shortcut."""
        return self.hit_rate[k]


@dataclass(slots=True)
class ResultTable:
    """Sweep results with text rendering and series extraction."""

    title: str
    outcomes: list[RunOutcome] = field(default_factory=list)

    def append(self, outcome: RunOutcome) -> None:
        """Add one run's outcome."""
        self.outcomes.append(outcome)

    def series(self, parameter: str, k: int = 10) -> list[tuple[Any, float]]:
        """``(parameter value, HR@k)`` points in insertion order."""
        return [
            (outcome.parameters.get(parameter), outcome.hr(k))
            for outcome in self.outcomes
        ]

    def best(self, k: int = 10) -> RunOutcome:
        """The outcome with the highest HR@k.

        Raises:
            ConfigError: on an empty table.
        """
        if not self.outcomes:
            raise ConfigError("result table is empty")
        return max(self.outcomes, key=lambda outcome: outcome.hr(k))

    def render(self, k_values: Sequence[int] = (10,)) -> str:
        """Fixed-width text table of the results."""
        parameter_names = sorted(
            {name for outcome in self.outcomes for name in outcome.parameters}
        )
        headers = (
            ["method"]
            + parameter_names
            + [f"HR@{k}" for k in k_values]
            + ["steps", "eps", "sec"]
        )
        rows = []
        for outcome in self.outcomes:
            rows.append(
                [outcome.method]
                + [str(outcome.parameters.get(name, "")) for name in parameter_names]
                + [f"{outcome.hr(k):.4f}" for k in k_values]
                + [str(outcome.steps), f"{outcome.epsilon_spent:.2f}",
                   f"{outcome.train_seconds:.1f}"]
            )
        widths = [
            max(len(headers[i]), *(len(row[i]) for row in rows)) if rows else len(headers[i])
            for i in range(len(headers))
        ]
        lines = [self.title, "-" * max(len(self.title), 1)]
        lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
        for row in rows:
            lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
        return "\n".join(lines)


class ExperimentRunner:
    """Runs PLP/DP-SGD configurations against one evaluation split.

    Args:
        train: training users' check-ins.
        holdout: held-out users for leave-one-out evaluation.
        base_config: defaults that every run starts from.
        seed: base seed; run ``i`` of a sweep uses ``seed + i`` so sweeps
            are deterministic yet independent.
        k_values: HR@k values to record.
        executor: bucket execution backend for every run (``"serial"``,
            ``"parallel"``, or a :class:`~repro.core.engine.BucketExecutor`
            shared across runs). Results are seed-determined and identical
            across executors, so sweeps can be parallelized freely.
        workers: worker count for ``executor="parallel"``.
    """

    def __init__(
        self,
        train: CheckinDataset,
        holdout: CheckinDataset,
        base_config: PLPConfig | None = None,
        seed: int = 0,
        k_values: Sequence[int] = (5, 10, 20),
        executor: str = "serial",
        workers: int | None = None,
    ) -> None:
        self.train = train
        self.base_config = base_config or PLPConfig()
        self.seed = int(seed)
        self.executor = executor
        self.workers = workers
        self.evaluator = LeaveOneOutEvaluator(
            sessionize_dataset(holdout), k_values=k_values
        )

    def run_one(
        self,
        overrides: dict[str, Any] | None = None,
        method: str = "plp",
        seed_offset: int = 0,
    ) -> RunOutcome:
        """Train one configuration and evaluate it.

        Args:
            overrides: PLPConfig field overrides for this run.
            method: ``"plp"`` or ``"dpsgd"``.
            seed_offset: added to the runner's base seed.
        """
        if method not in ("plp", "dpsgd"):
            raise ConfigError(f"method must be 'plp' or 'dpsgd', got {method!r}")
        overrides = overrides or {}
        config = self.base_config.with_overrides(**overrides)
        trainer_cls = UserLevelDPSGD if method == "dpsgd" else PrivateLocationPredictor
        trainer = trainer_cls(
            config,
            rng=self.seed + seed_offset,
            executor=self.executor,
            workers=self.workers,
        )
        started = time.perf_counter()
        history = trainer.fit(self.train)
        seconds = time.perf_counter() - started
        result = self.evaluator.evaluate(trainer.recommender())
        return RunOutcome(
            parameters=dict(overrides),
            method=method,
            hit_rate=dict(result.hit_rate),
            steps=len(history),
            epsilon_spent=history.final_epsilon,
            train_seconds=seconds,
        )

    def sweep(
        self,
        spec: SweepSpec,
        methods: Sequence[str] = ("plp",),
        title: str | None = None,
    ) -> ResultTable:
        """One-factor sweep: every value of ``spec`` for every method."""
        table = ResultTable(
            title=title or f"Sweep over {spec.label} ({len(spec.values)} values)"
        )
        offset = 0
        for value in spec.values:
            for method in methods:
                table.append(
                    self.run_one(
                        overrides={spec.field: value},
                        method=method,
                        seed_offset=offset,
                    )
                )
                offset += 1
        return table

    def grid(
        self,
        specs: Sequence[SweepSpec],
        method: str = "plp",
        title: str | None = None,
    ) -> ResultTable:
        """Full cartesian grid over several swept fields."""
        table = ResultTable(title=title or "Grid sweep")
        combos: list[dict[str, Any]] = [{}]
        for spec in specs:
            combos = [
                {**combo, spec.field: value}
                for combo in combos
                for value in spec.values
            ]
        for offset, overrides in enumerate(combos):
            table.append(
                self.run_one(overrides=overrides, method=method, seed_offset=offset)
            )
        return table
