"""Experiment framework: reusable parameter sweeps over PLP training.

The paper's evaluation is a family of one-factor sweeps (epsilon, q,
lambda, sigma, C, neg). This package provides the programmatic API to run
such sweeps on any dataset — the benchmark suite regenerates the paper's
figures with it, and downstream users can script their own studies::

    from repro.experiments import ExperimentRunner, SweepSpec

    runner = ExperimentRunner(train, holdout, base_config=PLPConfig(), seed=3)
    table = runner.sweep(SweepSpec(field="grouping_factor", values=[1, 2, 4, 6]))
    print(table.render())
"""

from repro.experiments.runner import (
    ExperimentRunner,
    ResultTable,
    RunOutcome,
    SweepSpec,
)

__all__ = ["ExperimentRunner", "SweepSpec", "RunOutcome", "ResultTable"]
