"""Experiment framework: reusable parameter sweeps over PLP training.

The paper's evaluation is a family of one-factor sweeps (epsilon, q,
lambda, sigma, C, neg). This package provides the programmatic API to run
such sweeps on any dataset — the benchmark suite regenerates the paper's
figures with it, and downstream users can script their own studies::

    from repro.experiments import ExperimentRunner, SweepSpec

    runner = ExperimentRunner(train, holdout, base_config=PLPConfig(), seed=3)
    table = runner.sweep(SweepSpec(field="grouping_factor", values=[1, 2, 4, 6]))
    print(table.render())

For fleet-scale grids, :mod:`repro.experiments.sweep` adds the
declarative, resumable orchestrator behind ``repro sweep``::

    from repro.experiments import GridSpec, run_sweep

    spec = GridSpec.from_file("sweep.json")
    report = run_sweep(spec, "out/", workers=8, resume=True)
    print(report.summary())

and :mod:`repro.experiments.figures` regenerates every paper figure in
one invocation (``repro sweep --figures``).
"""

from repro.experiments.figures import PAPER_FIGURES, figure_spec, figure_specs, run_figures
from repro.experiments.runner import (
    ExperimentRunner,
    ResultTable,
    RunOutcome,
    SweepSpec,
)
from repro.experiments.sweep import (
    GridSpec,
    SweepReport,
    SweepRun,
    WorkloadSpec,
    expand_spec,
    run_sweep,
    validate_aggregate,
)

__all__ = [
    "ExperimentRunner",
    "SweepSpec",
    "RunOutcome",
    "ResultTable",
    "GridSpec",
    "WorkloadSpec",
    "SweepRun",
    "SweepReport",
    "expand_spec",
    "run_sweep",
    "validate_aggregate",
    "PAPER_FIGURES",
    "figure_spec",
    "figure_specs",
    "run_figures",
]
