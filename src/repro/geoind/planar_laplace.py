"""Planar Laplace mechanism for geo-indistinguishability (Andres et al. 2013).

A mechanism is epsilon-geo-indistinguishable when, for any two locations
``x, x'`` within distance ``r`` of each other, the output distributions
differ by a factor of at most ``exp(epsilon * r)`` — a metric relaxation of
DP over the Euclidean plane. The canonical mechanism adds 2-D noise with
density proportional to ``exp(-epsilon * ||z||)``: draw an angle uniformly
and a radius from the Gamma(2, 1/epsilon) distribution (equivalently,
``r = -(1/eps) * (W_{-1}((p-1)/e) + 1)`` via the Lambert W function).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from scipy import special

from repro.exceptions import ConfigError
from repro.rng import RngLike, ensure_rng

_EARTH_RADIUS_METERS = 6_371_000.0


@dataclass(frozen=True, slots=True)
class PlanarLaplaceMechanism:
    """2-D Laplace noise achieving epsilon-geo-indistinguishability.

    Attributes:
        epsilon: privacy parameter per meter; typical values pair a
            desired level ``l`` with a radius ``r`` as ``epsilon = l / r``
            (e.g. l = ln(4) within r = 200 m).
    """

    epsilon: float

    def __post_init__(self) -> None:
        if self.epsilon <= 0.0:
            raise ConfigError(f"epsilon must be positive, got {self.epsilon}")

    def sample_radius(self, rng: RngLike = None) -> float:
        """Draw the noise radius (meters) via the inverse-CDF Lambert-W form."""
        generator = ensure_rng(rng)
        p = generator.random()
        # C(r) = 1 - (1 + eps*r) * exp(-eps*r); invert with W_{-1}.
        w = special.lambertw((p - 1.0) / math.e, k=-1).real
        return -(1.0 / self.epsilon) * (w + 1.0)

    def perturb_xy(
        self, x: float, y: float, rng: RngLike = None
    ) -> tuple[float, float]:
        """Perturb a point given in planar (meter) coordinates."""
        generator = ensure_rng(rng)
        theta = generator.uniform(0.0, 2.0 * math.pi)
        radius = self.sample_radius(generator)
        return x + radius * math.cos(theta), y + radius * math.sin(theta)

    def perturb_latlon(
        self, latitude: float, longitude: float, rng: RngLike = None
    ) -> tuple[float, float]:
        """Perturb a (latitude, longitude) pair.

        The meter-scale noise vector is converted to degree offsets with
        the local-tangent-plane approximation (valid for the city-scale
        radii geo-ind uses).
        """
        if not -90.0 <= latitude <= 90.0:
            raise ConfigError(f"latitude out of range: {latitude}")
        if not -180.0 <= longitude <= 180.0:
            raise ConfigError(f"longitude out of range: {longitude}")
        generator = ensure_rng(rng)
        theta = generator.uniform(0.0, 2.0 * math.pi)
        radius = self.sample_radius(generator)
        dlat = (radius * math.sin(theta)) / _EARTH_RADIUS_METERS
        dlon = (radius * math.cos(theta)) / (
            _EARTH_RADIUS_METERS * max(math.cos(math.radians(latitude)), 1e-9)
        )
        return latitude + math.degrees(dlat), longitude + math.degrees(dlon)

    def expected_radius(self) -> float:
        """Mean displacement ``2 / epsilon`` of the planar Laplace noise."""
        return 2.0 / self.epsilon

    @staticmethod
    def for_protection_radius(level: float, radius_meters: float) -> "PlanarLaplaceMechanism":
        """Mechanism giving ``level`` indistinguishability within ``radius_meters``."""
        if level <= 0.0:
            raise ConfigError(f"level must be positive, got {level}")
        if radius_meters <= 0.0:
            raise ConfigError(f"radius must be positive, got {radius_meters}")
        return PlanarLaplaceMechanism(epsilon=level / radius_meters)
