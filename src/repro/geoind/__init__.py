"""Geo-indistinguishability extension (Sections 3.3 and 6).

When the trained model is hosted by an *untrusted* location-based service,
the querying user must protect her recent check-in set locally before
sending it. The paper points to geo-indistinguishability (Andres et al.
2013) for this: the planar Laplace mechanism implemented here.
"""

from repro.geoind.planar_laplace import PlanarLaplaceMechanism

__all__ = ["PlanarLaplaceMechanism"]
