"""End-to-end observability benchmark: train -> evaluate -> recommend.

Runs the full pipeline on the synthetic Foursquare-Tokyo workload with an
:class:`repro.Observability` bundle attached and writes one JSON report
(``BENCH_plp.json``) with:

- per-stage step time (sample/group/local_train/aggregate/noise/apply/
  account) from the stage profiler,
- training throughput (steps, buckets/sec),
- a per-backend kernel comparison: the engine's ``local_train`` stage
  timed for every compute backend on one fixed workload, with the
  speedup over the ``reference`` backend (see
  :func:`measure_kernel_speedup`),
- tier-1 evaluation metrics (HR@k, MRR) plus per-query latency p50/p95
  from the ``repro_eval_query_seconds`` histogram,
- single-query ``recommend`` latency p50/p95,
- a sharded-executor scaling section: bucket throughput for the serial
  baseline vs the sharded executor at 1 and 2 workers on one fixed
  workload, with the end-to-end check that ledger and embeddings came
  out bit-identical across executors (:func:`measure_sharded_scaling`),
- a serving section (:func:`measure_serving`): the asyncio front end
  driven over real HTTP — serial per-request baseline vs sustained
  concurrent throughput (micro-batch coalescing), p50/p95 under load,
  the overload probe (503 + ``Retry-After``, zero silent drops), and
  the clustered ANN index's recall@10 against the exact kernel,
- peak RSS.

A second mode, ``--out-of-core``, materializes a disk-backed sharded
corpus and trains on it through the sharded executor, reporting build
and training throughput plus peak RSS; ``--rss-cap-mb`` turns the RSS
figure into a hard gate (exit code 4), which CI uses to prove training
memory stays flat as the corpus grows (:func:`run_out_of_core`).

The report is schema-validated (:func:`validate_report`) before writing.
When a committed baseline report exists (``BENCH_plp.json`` at the repo
root, or ``--baseline``), the fresh report is diffed against it and a
>25% regression in training throughput (buckets/sec) or recommend p95
fails the run with exit code 3 (:func:`compare_to_baseline`).

Run it through the CLI (no ``PYTHONPATH`` gymnastics needed)::

    repro bench --quick --out BENCH_plp.json

or as the historical script, which forwards here::

    PYTHONPATH=src python benchmarks/run_bench.py --quick --out BENCH_plp.json
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

import numpy as np

import repro
from repro.core.engine.engine import STAGE_NAMES
from repro.nn.backends import numba_kernels
from repro.observability import peak_rss_bytes

__all__ = [
    "SCHEMA_VERSION",
    "STAGE_NAMES",
    "add_bench_arguments",
    "compare_to_baseline",
    "main",
    "measure_kernel_speedup",
    "measure_serving",
    "measure_sharded_scaling",
    "measure_sweep",
    "run_benchmark",
    "run_from_args",
    "run_out_of_core",
    "validate_report",
]

SCHEMA_VERSION = 5

#: Workload/config knobs per mode. ``quick`` finishes in seconds; ``full``
#: trains to a meaningful fraction of the budget.
_MODES = {
    "quick": dict(
        num_users=80, num_locations=60, num_clusters=5,
        max_steps=3, recommend_queries=50, kernel_repeats=2,
    ),
    "full": dict(
        num_users=600, num_locations=200, num_clusters=10,
        max_steps=40, recommend_queries=500, kernel_repeats=3,
    ),
}

#: The kernel-comparison workload (independent of --quick: the tiny smoke
#: workload would mostly measure fixed overheads, not the kernels). Sized
#: so the reference backend's ``local_train`` runs long enough to time
#: reliably while the whole comparison stays a few seconds.
_KERNEL_WORKLOAD = dict(
    num_users=1500, num_locations=9000, mean_checkins_per_user=80.0,
    max_steps=3, data_seed=5,
)

#: The sharded-scaling workload: reference backend and a high grouping
#: factor, so each bucket carries substantial local compute relative to
#: its fixed shipping cost (a bucket's clipped delta is dense in the
#: vocabulary regardless of how many users it holds), and enough steps
#: to amortize the one-time pool start. Sized to stay a few seconds.
_SHARDED_WORKLOAD = dict(
    num_users=400, num_locations=300, num_clusters=8,
    mean_checkins_per_user=60.0, max_steps=8, grouping_factor=8,
    sampling_probability=0.4, backend="reference", data_seed=9,
)

#: The serving workload: a seconds-scale model plus the request counts
#: for the three phases (serial baseline, sustained concurrency, the
#: overload burst). Sized so the whole section stays a few seconds while
#: the sustained phase still fills micro-batches.
_SERVING_WORKLOAD = dict(
    num_users=80, num_locations=60, num_clusters=5, max_steps=3,
    baseline_requests=40, sustained_requests=360, clients=24,
    max_batch=64, max_wait_seconds=0.005, overload_clients=32,
    data_seed=11,
)

#: The ANN-recall workload: a clustered synthetic embedding matrix large
#: enough that the index's default partition (about ``sqrt(L)`` clusters,
#: ``nprobe=8``) is genuinely sublinear rather than a full scan.
_ANN_WORKLOAD = dict(
    num_locations=2048, dim=32, num_clusters=24, spread=0.25, top_k=10,
)

#: The sweep-orchestrator workload: a 2-axis x 2-value x 2-seed grid (8
#: runs) of seconds-scale configs dispatched across 2 workers, then
#: resumed to measure the manifest/outcome-scan overhead. Independent of
#: --quick for the same reason as the kernel workload: the orchestrator's
#: dispatch/resume costs are what is being gated, on a fixed grid.
_SWEEP_WORKLOAD = dict(
    num_users=60, num_locations=40, num_clusters=5,
    mean_checkins_per_user=20.0, holdout_users=10, max_steps=2,
    workers=2,
)

#: Regression threshold for :func:`compare_to_baseline` (fractional).
_REGRESSION_THRESHOLD = 0.25

#: Absolute slack for the recommend-p95 check: at the quick scale p95 is
#: tens of microseconds, where a scheduler blip alone exceeds 25%; a
#: regression must clear both the relative threshold and this floor.
_P95_SLACK_SECONDS = 0.0005


def _build_workload(mode: dict, seed: int):
    config = repro.SyntheticConfig(
        num_users=mode["num_users"],
        num_locations=mode["num_locations"],
        num_clusters=mode["num_clusters"],
    )
    dataset = repro.CheckinDataset(
        repro.paper_preprocessing(repro.generate_checkins(config, rng=seed))
    )
    holdout_size = max(5, mode["num_users"] // 10)
    return repro.holdout_users_split(dataset, holdout_size, rng=seed)


def _local_train_seconds(dataset, backend: str, seed: int) -> float:
    """One instrumented training run; returns the ``local_train`` total."""
    obs = repro.with_observability()
    config = repro.PLPConfig(
        max_steps=_KERNEL_WORKLOAD["max_steps"], backend=backend
    )
    repro.train(config, dataset, rng=seed, with_observability=obs)
    seconds = obs.profiler.summary()["engine.stage.local_train"]["total_seconds"]
    obs.close()
    return float(seconds)


def measure_kernel_speedup(repeats: int = 3, seed: int = 7) -> dict:
    """Time the engine's ``local_train`` stage per compute backend.

    All backends train on the same fixed workload (``_KERNEL_WORKLOAD``)
    at the default :class:`repro.PLPConfig` (only ``max_steps`` and
    ``backend`` overridden). Runs are interleaved — one fast run, one
    reference run, ``repeats`` times — and the best run per backend is
    kept, so a noisy-neighbor blip degrades both backends alike instead
    of skewing the ratio. The ``numba`` backend is timed only when numba
    is actually importable (otherwise it would just re-measure ``fast``).
    """
    spec = _KERNEL_WORKLOAD
    raw = repro.generate_checkins(
        repro.SyntheticConfig(
            num_users=spec["num_users"],
            num_locations=spec["num_locations"],
            mean_checkins_per_user=spec["mean_checkins_per_user"],
        ),
        rng=spec["data_seed"],
    )
    dataset = repro.CheckinDataset(repro.paper_preprocessing(raw))

    backends = ["fast", "reference"]
    if numba_kernels.NUMBA_AVAILABLE:
        backends.insert(1, "numba")
    _local_train_seconds(dataset, "fast", seed)  # warm caches/allocator
    best: dict[str, float] = {}
    for _ in range(max(1, repeats)):
        for backend in backends:
            seconds = _local_train_seconds(dataset, backend, seed)
            best[backend] = min(best.get(backend, float("inf")), seconds)

    reference = best["reference"]
    return {
        "workload": {
            "num_users": spec["num_users"],
            "num_locations": spec["num_locations"],
            "mean_checkins_per_user": spec["mean_checkins_per_user"],
            "max_steps": spec["max_steps"],
            "repeats": int(repeats),
        },
        "local_train_seconds": dict(sorted(best.items())),
        "speedup_vs_reference": {
            backend: reference / seconds
            for backend, seconds in sorted(best.items())
            if backend != "reference"
        },
        "numba_compiled": bool(numba_kernels.NUMBA_AVAILABLE),
    }


def measure_sharded_scaling(
    seed: int = 7, worker_counts: tuple[int, ...] = (1, 2)
) -> dict:
    """Bucket throughput of the sharded executor vs the serial baseline.

    All runs train the same fixed workload (``_SHARDED_WORKLOAD``) from
    the same seed; besides the timings, the section records that the
    privacy ledger and the embeddings came out **bit-identical** across
    executors — the executor-equivalence contract, measured end to end.
    """
    spec = _SHARDED_WORKLOAD
    dataset = repro.CheckinDataset(
        repro.paper_preprocessing(
            repro.generate_checkins(
                repro.SyntheticConfig(
                    num_users=spec["num_users"],
                    num_locations=spec["num_locations"],
                    num_clusters=spec["num_clusters"],
                    mean_checkins_per_user=spec["mean_checkins_per_user"],
                ),
                rng=spec["data_seed"],
            )
        )
    )
    config = repro.PLPConfig(
        max_steps=spec["max_steps"],
        grouping_factor=spec["grouping_factor"],
        sampling_probability=spec["sampling_probability"],
        backend=spec["backend"],
    )

    def run(executor: str, workers: int | None):
        # Time the local_train stage — the part the executor owns. The
        # other stages (sample/aggregate/apply/...) are single-writer by
        # design and identical across executors.
        obs = repro.with_observability()
        model = repro.train(
            config,
            dataset,
            rng=seed,
            executor=executor,
            workers=workers,
            with_observability=obs,
        )
        summary = obs.profiler.summary()
        seconds = float(summary["engine.stage.local_train"]["total_seconds"])
        obs.close()
        buckets = sum(record.num_buckets for record in model.history)
        return model, seconds, buckets

    serial_model, serial_seconds, buckets = run("serial", None)
    per_worker: dict[str, dict] = {}
    ledger_identical = True
    embeddings_identical = True
    for count in worker_counts:
        model, seconds, sharded_buckets = run("sharded", count)
        ledger_identical &= (
            model.privacy["epsilon"] == serial_model.privacy["epsilon"]
            and sharded_buckets == buckets
        )
        embeddings_identical &= bool(
            np.array_equal(
                model.embeddings.matrix, serial_model.embeddings.matrix
            )
        )
        per_worker[str(count)] = {
            "seconds": seconds,
            "buckets_per_second": sharded_buckets / seconds if seconds else 0.0,
            "speedup_vs_serial": serial_seconds / seconds if seconds else 0.0,
        }

    try:
        available_cores = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        available_cores = os.cpu_count() or 1

    return {
        "workload": {
            "num_users": spec["num_users"],
            "num_locations": spec["num_locations"],
            "max_steps": spec["max_steps"],
            "grouping_factor": spec["grouping_factor"],
            "sampling_probability": spec["sampling_probability"],
        },
        # Worker scaling is bounded by the cores the process may use;
        # on a single-core host the sharded numbers measure pure
        # shipping overhead, not parallel throughput.
        "available_cores": int(available_cores),
        "buckets_total": int(buckets),
        "serial": {
            "seconds": serial_seconds,
            "buckets_per_second": buckets / serial_seconds
            if serial_seconds
            else 0.0,
        },
        "workers": per_worker,
        "ledger_identical": bool(ledger_identical),
        "embeddings_identical": bool(embeddings_identical),
    }


def _clustered_embeddings(
    num_locations: int, dim: int, num_clusters: int, spread: float, seed: int
):
    """A deterministic clustered unit-norm embedding matrix (ANN workload)."""
    from repro.models.embeddings import EmbeddingMatrix
    from repro.rng import ensure_rng

    rng = ensure_rng(seed)
    centers = rng.normal(size=(num_clusters, dim))
    assignment = np.arange(num_locations) % num_clusters
    points = centers[assignment] + spread * rng.normal(size=(num_locations, dim))
    points /= np.linalg.norm(points, axis=1, keepdims=True)
    return EmbeddingMatrix.from_normalized(points)


def measure_ann_recall(seed: int = 7) -> dict:
    """Recall@k of the clustered sublinear index vs the exact kernel.

    Builds :class:`~repro.serving.ann.ClusteredIndex` with its defaults
    (about ``sqrt(L)`` clusters, ``nprobe=8``) over a clustered synthetic
    embedding matrix and compares its top-k against the exact full-matrix
    float32 scoring for a spread of query profiles.
    """
    from repro.serving.ann import ClusteredIndex

    spec = _ANN_WORKLOAD
    embeddings = _clustered_embeddings(
        spec["num_locations"], spec["dim"], spec["num_clusters"],
        spec["spread"], seed,
    )
    index = ClusteredIndex(embeddings)
    matrix = embeddings.matrix32
    profiles = matrix[:: max(1, spec["num_locations"] // 128)]
    exact_top = np.argsort(
        -(profiles @ matrix.T), axis=1, kind="stable"
    )[:, : spec["top_k"]]
    recall = index.recall_at_k(profiles, exact_top)
    return {
        "num_locations": int(spec["num_locations"]),
        "dim": int(spec["dim"]),
        "num_clusters": int(index.num_clusters),
        "nprobe": int(index.nprobe),
        "profiles": int(profiles.shape[0]),
        "top_k": int(spec["top_k"]),
        "recall": float(recall),
    }


def _sweep_bench_spec(seed: int):
    from repro.experiments.sweep import GridSpec

    spec = _SWEEP_WORKLOAD
    return GridSpec.from_dict({
        "name": "bench-sweep",
        "axes": {"epsilon": [1.0, 5.0], "grouping_factor": [1, 4]},
        "base": {
            "embedding_dim": 8, "num_negatives": 4,
            "sampling_probability": 0.2, "noise_multiplier": 2.0,
            "max_steps": spec["max_steps"],
        },
        "seeds": 2,
        "seed": int(seed),
        "workload": {
            "synthetic": {
                "num_users": spec["num_users"],
                "num_locations": spec["num_locations"],
                "num_clusters": spec["num_clusters"],
                "mean_checkins_per_user": spec["mean_checkins_per_user"],
            },
            "holdout_users": spec["holdout_users"],
        },
    })


def measure_sweep(seed: int = 7) -> dict:
    """Benchmark the sweep orchestrator: parallel dispatch + resume.

    Runs the fixed 8-run grid (``_SWEEP_WORKLOAD``) fresh across a
    2-worker pool (runs/sec = end-to-end orchestration throughput,
    including workload rebuild and outcome persistence), then resumes
    the completed sweep to measure the manifest-scan overhead — the
    resume pass must skip every run and cost a small fraction of the
    fresh pass.
    """
    import tempfile

    from repro.experiments.sweep import run_sweep

    grid = _sweep_bench_spec(seed)
    with tempfile.TemporaryDirectory() as tmp:
        out_dir = Path(tmp) / "sweep"
        fresh_started = time.perf_counter()
        fresh = run_sweep(grid, out_dir, workers=int(_SWEEP_WORKLOAD["workers"]))
        fresh_seconds = time.perf_counter() - fresh_started
        resume_started = time.perf_counter()
        resumed = run_sweep(
            grid, out_dir, workers=int(_SWEEP_WORKLOAD["workers"]), resume=True
        )
        resume_seconds = time.perf_counter() - resume_started
    return {
        "runs": int(fresh.total),
        "workers": int(_SWEEP_WORKLOAD["workers"]),
        "executed": int(fresh.executed),
        "failed": int(fresh.failed),
        "fresh_seconds": float(fresh_seconds),
        "runs_per_second": float(fresh.total / fresh_seconds),
        "resume_seconds": float(resume_seconds),
        "resume_skipped": int(resumed.skipped),
        "resume_executed": int(resumed.executed),
        "resume_overhead_ratio": float(resume_seconds / fresh_seconds),
    }


def measure_serving(seed: int = 7) -> dict:
    """Benchmark the asyncio serving front end over real HTTP.

    Three phases against a freshly trained seconds-scale artifact:

    1. **baseline** — one client, one request in flight: every request
       pays the full micro-batch window alone (the per-request cost).
    2. **sustained** — ``clients`` concurrent keep-alive connections:
       the batcher coalesces, so throughput should multiply while the
       queue bound keeps latency flat.
    3. **overload** — a burst against a tiny-queue deployment: excess
       load must be shed with 503 + ``Retry-After`` and every request
       must still get *some* response (zero silent drops).

    Plus the exact-vs-ANN recall comparison (:func:`measure_ann_recall`).
    """
    import shutil
    import tempfile
    import threading
    from http.client import HTTPConnection

    from repro.models.serialization import save_deployable_model
    from repro.serving.asgi import BackgroundServer
    from repro.serving.service import RecommendService

    spec = _SERVING_WORKLOAD
    train_set, holdout = _build_workload(spec, seed)
    config = repro.PLPConfig(
        epsilon=2.0, max_steps=spec["max_steps"], grouping_factor=4,
        sampling_probability=0.2,
    )
    model = repro.train(config, train_set, rng=seed)
    trajectories = repro.sessionize_dataset(holdout)
    queries = [
        list(trajectory.locations[:-1])
        for trajectory in trajectories
        if len(trajectory) >= 2
    ] or [[0]]
    bodies = [
        json.dumps({"v": 1, "recent": query, "top_k": 10}).encode("utf-8")
        for query in queries
    ]
    headers = {"Content-Type": "application/json"}

    def post(conn: HTTPConnection, body: bytes):
        started = time.perf_counter()
        conn.request("POST", "/recommend", body, headers)
        response = conn.getresponse()
        response.read()
        return (
            response.status,
            response.getheader("Retry-After"),
            time.perf_counter() - started,
        )

    scratch = tempfile.mkdtemp(prefix="repro-serving-bench-")
    try:
        artifact = Path(scratch) / "model.npz"
        save_deployable_model(
            artifact, model.embeddings, model.vocabulary, model.privacy
        )

        service = RecommendService.from_artifact(
            artifact, max_batch=spec["max_batch"],
            max_wait_seconds=spec["max_wait_seconds"],
            timeout_seconds=10.0, max_queue=8192,
        )
        with BackgroundServer(service) as server:
            port = server.port
            conn = HTTPConnection("127.0.0.1", port)
            post(conn, bodies[0])  # warm the connection and the caches
            baseline_latencies: list[float] = []
            started = time.perf_counter()
            for i in range(spec["baseline_requests"]):
                _, _, latency = post(conn, bodies[i % len(bodies)])
                baseline_latencies.append(latency)
            baseline_wall = time.perf_counter() - started
            conn.close()

            clients = spec["clients"]
            per_client = spec["sustained_requests"] // clients
            results: list[list[tuple]] = [[] for _ in range(clients)]
            barrier = threading.Barrier(clients + 1)

            def run_client(idx: int) -> None:
                client_conn = HTTPConnection("127.0.0.1", port)
                try:
                    post(client_conn, bodies[0])  # connect before the gun
                    barrier.wait()
                    for j in range(per_client):
                        body = bodies[(idx + j) % len(bodies)]
                        results[idx].append(post(client_conn, body))
                finally:
                    client_conn.close()

            threads = [
                threading.Thread(target=run_client, args=(i,))
                for i in range(clients)
            ]
            for thread in threads:
                thread.start()
            barrier.wait()
            started = time.perf_counter()
            for thread in threads:
                thread.join()
            sustained_wall = time.perf_counter() - started
        service.close()

        flat = [entry for per in results for entry in per]
        sent = clients * per_client
        ok = [entry for entry in flat if entry[0] == 200]
        shed = [entry for entry in flat if entry[0] == 503]
        latencies = [entry[2] for entry in ok]

        # Overload probe: a deliberately tiny deployment (queue bound 2,
        # slow batch cadence) hit with one simultaneous burst.
        overload_service = RecommendService.from_artifact(
            artifact, max_batch=4, max_wait_seconds=0.05,
            timeout_seconds=10.0, max_queue=2,
        )
        burst_size = spec["overload_clients"]
        burst: list = [None] * burst_size
        with BackgroundServer(overload_service) as server:
            burst_port = server.port
            burst_barrier = threading.Barrier(burst_size + 1)

            def run_burst(idx: int) -> None:
                burst_conn = HTTPConnection("127.0.0.1", burst_port)
                try:
                    burst_barrier.wait()
                    burst[idx] = post(burst_conn, bodies[idx % len(bodies)])
                finally:
                    burst_conn.close()

            burst_threads = [
                threading.Thread(target=run_burst, args=(i,))
                for i in range(burst_size)
            ]
            for thread in burst_threads:
                thread.start()
            burst_barrier.wait()
            for thread in burst_threads:
                thread.join()
        overload_service.close()

        burst_shed = [entry for entry in burst if entry and entry[0] == 503]
        burst_ok = [entry for entry in burst if entry and entry[0] == 200]
    finally:
        shutil.rmtree(scratch, ignore_errors=True)

    baseline_rps = (
        spec["baseline_requests"] / baseline_wall if baseline_wall else 0.0
    )
    sustained_rps = len(ok) / sustained_wall if sustained_wall else 0.0
    return {
        "workload": {
            "num_users": int(spec["num_users"]),
            "num_locations": int(spec["num_locations"]),
            "max_batch": int(spec["max_batch"]),
            "max_wait_seconds": float(spec["max_wait_seconds"]),
        },
        "baseline": {
            "requests": int(spec["baseline_requests"]),
            "req_per_s": baseline_rps,
            "p50_seconds": float(np.percentile(baseline_latencies, 50)),
            "p95_seconds": float(np.percentile(baseline_latencies, 95)),
        },
        "sustained": {
            "requests": int(sent),
            "clients": int(clients),
            "req_per_s": sustained_rps,
            "p50_seconds": float(np.percentile(latencies, 50)),
            "p95_seconds": float(np.percentile(latencies, 95)),
            "ok": len(ok),
            "shed": len(shed),
            "errors": int(sent - len(ok) - len(shed)),
            "shed_rate": len(shed) / sent if sent else 0.0,
            "all_responded": len(flat) == sent,
            "speedup_vs_baseline": (
                sustained_rps / baseline_rps if baseline_rps else 0.0
            ),
        },
        "overload": {
            "requests": int(burst_size),
            "ok": len(burst_ok),
            "shed": len(burst_shed),
            "shed_rate": len(burst_shed) / burst_size if burst_size else 0.0,
            "retry_after_present": bool(burst_shed)
            and all(entry[1] is not None for entry in burst_shed),
            "all_responded": all(entry is not None for entry in burst),
        },
        "ann": measure_ann_recall(seed=seed),
    }


def run_out_of_core(
    users: int = 20_000,
    rounds: int = 2,
    workers: int = 2,
    rss_cap_mb: float | None = None,
    seed: int = 7,
    store_dir: "str | Path | None" = None,
) -> dict:
    """Materialize a disk-backed corpus and train on it out-of-core.

    Builds a sharded store with the vectorized bulk generator, runs
    ``rounds`` Algorithm 1 steps through the sharded executor, and
    records wall times, throughput, store size, and the process peak RSS.
    With ``rss_cap_mb`` set, ``under_cap`` reports whether the peak RSS
    stayed below the cap (the CLI exits 4 when it did not).
    """
    import shutil
    import tempfile

    from repro.core.trainer import PrivateLocationPredictor
    from repro.data.synthetic import materialize_synthetic_store

    config = repro.SyntheticConfig(
        num_users=users,
        num_locations=min(2000, max(100, users // 50)),
        num_clusters=20,
    )
    scratch = None
    if store_dir is None:
        scratch = tempfile.mkdtemp(prefix="repro-ooc-")
        store_path = Path(scratch) / "corpus"
    else:
        store_path = Path(store_dir)

    try:
        build_started = time.perf_counter()
        store = materialize_synthetic_store(
            config, path=store_path, rng=seed, profile="bulk"
        )
        build_seconds = time.perf_counter() - build_started
        store_bytes = sum(
            entry.stat().st_size for entry in store_path.iterdir()
        )

        # Sample a few hundred users per round regardless of corpus size,
        # so the measured round cost reflects out-of-core access, not a
        # corpus-proportional amount of local training.
        q = min(0.5, max(256.0 / users, 1e-6))
        plp = repro.PLPConfig(
            embedding_dim=32,
            sampling_probability=q,
            max_steps=rounds,
            epsilon=1000.0,
            backend="fast",
        )
        trainer = PrivateLocationPredictor(
            plp, rng=seed, executor="sharded", workers=workers
        )
        train_started = time.perf_counter()
        with store:
            trainer.fit(store)
        train_seconds = time.perf_counter() - train_started
        buckets = sum(record.num_buckets for record in trainer.history)

        peak_rss = peak_rss_bytes()
        under_cap = None
        if rss_cap_mb is not None and peak_rss is not None:
            under_cap = peak_rss <= rss_cap_mb * 1024 * 1024
        return {
            "schema_version": SCHEMA_VERSION,
            "out_of_core": {
                "num_users": int(store.num_users),
                "num_checkins": int(store.num_checkins),
                "num_shards": int(store.describe()["num_shards"]),
                "store_bytes": int(store_bytes),
                "build_seconds": build_seconds,
                "rounds": len(trainer.history),
                "workers": int(workers),
                "sampling_probability": q,
                "train_seconds": train_seconds,
                "buckets_total": int(buckets),
                "buckets_per_second": buckets / train_seconds
                if train_seconds
                else 0.0,
                "epsilon_spent": trainer.epsilon_spent(),
                "peak_rss_bytes": peak_rss,
                "rss_cap_mb": rss_cap_mb,
                "under_cap": under_cap,
            },
        }
    finally:
        if scratch is not None:
            shutil.rmtree(scratch, ignore_errors=True)


def run_benchmark(
    quick: bool = True, seed: int = 7, backend: str = "reference"
) -> dict:
    """Run the instrumented pipeline and return the (validated) report."""
    mode = _MODES["quick" if quick else "full"]
    train_set, holdout = _build_workload(mode, seed)

    obs = repro.with_observability()
    config = repro.PLPConfig(
        epsilon=2.0,
        max_steps=mode["max_steps"],
        grouping_factor=4,
        sampling_probability=0.2,
        backend=backend,
    )

    train_started = time.perf_counter()
    model = repro.train(config, train_set, rng=seed, with_observability=obs)
    train_seconds = time.perf_counter() - train_started

    result = repro.evaluate(model, holdout, with_observability=obs)

    # Single-query serving-style latency, measured through the same
    # registry so p50/p95 come from one quantile implementation.
    recommend_seconds = obs.metrics.histogram(
        "repro_bench_recommend_seconds", "Single-query recommend latency"
    )
    recommender = model.recommender()
    trajectories = repro.sessionize_dataset(holdout)
    queries = [
        list(trajectory.locations[:-1])
        for trajectory in trajectories
        if len(trajectory) >= 2
    ]
    queries = (queries * (mode["recommend_queries"] // max(1, len(queries)) + 1))[
        : mode["recommend_queries"]
    ]
    for query in queries:
        started = time.perf_counter()
        try:
            recommender.recommend(query, top_k=10)
        except repro.ConfigError:
            continue
        recommend_seconds.observe(time.perf_counter() - started)

    profile = obs.profiler.summary()
    stage_seconds = {
        stage: profile.get(
            f"engine.stage.{stage}",
            {"count": 0, "total_seconds": 0.0, "mean_seconds": 0.0,
             "max_seconds": 0.0},
        )
        for stage in STAGE_NAMES
    }
    steps = int(obs.metrics.counter("repro_engine_steps_total").total())
    buckets = int(obs.metrics.counter("repro_engine_buckets_total").total())
    query_seconds = obs.metrics.histogram("repro_eval_query_seconds")

    report = {
        "schema_version": SCHEMA_VERSION,
        "quick": bool(quick),
        "seed": int(seed),
        "backend": str(backend),
        "generated_unix": time.time(),
        "workload": {
            "num_train_users": train_set.num_users,
            "num_checkins": train_set.num_checkins,
            "vocabulary_size": model.vocabulary.size,
        },
        "training": {
            "steps": steps,
            "total_seconds": train_seconds,
            "buckets_total": buckets,
            "buckets_per_second": buckets / train_seconds if train_seconds else 0.0,
            "epsilon_spent": float(model.privacy.get("epsilon", 0.0)),
            "stage_seconds": stage_seconds,
        },
        "kernels": measure_kernel_speedup(
            repeats=mode["kernel_repeats"], seed=seed
        ),
        "sharded": measure_sharded_scaling(seed=seed),
        "serving": measure_serving(seed=seed),
        "sweep": measure_sweep(seed=seed),
        "evaluation": {
            "cases": result.num_cases,
            "skipped": result.num_skipped,
            "hit_rate": {str(k): v for k, v in sorted(result.hit_rate.items())},
            "mrr": result.mrr,
            "query_seconds_p50": query_seconds.quantile(0.5),
            "query_seconds_p95": query_seconds.quantile(0.95),
        },
        "recommend": {
            "queries": recommend_seconds.count(),
            "p50_seconds": recommend_seconds.quantile(0.5),
            "p95_seconds": recommend_seconds.quantile(0.95),
        },
        "peak_rss_bytes": peak_rss_bytes(),
    }
    obs.close()
    validate_report(report)
    return report


def validate_report(report: dict) -> None:
    """Schema-check a benchmark report; raises ``ValueError`` on mismatch.

    Hand-rolled (no jsonschema dependency): checks the key set, value
    types, the full stage breakdown, the kernel-comparison section, and
    basic sanity (p50 <= p95, non-negative counters).
    """
    problems: list[str] = []

    def expect(condition: bool, message: str) -> None:
        if not condition:
            problems.append(message)

    top = {
        "schema_version": int, "quick": bool, "seed": int, "backend": str,
        "generated_unix": float, "workload": dict, "training": dict,
        "kernels": dict, "sharded": dict, "serving": dict, "sweep": dict,
        "evaluation": dict, "recommend": dict,
    }
    for key, kind in top.items():
        expect(isinstance(report.get(key), kind), f"{key}: expected {kind.__name__}")
    expect("peak_rss_bytes" in report, "peak_rss_bytes: missing")
    rss = report.get("peak_rss_bytes")
    expect(rss is None or (isinstance(rss, int) and rss > 0),
           "peak_rss_bytes: expected positive int or null")
    expect(report.get("schema_version") == SCHEMA_VERSION,
           f"schema_version: expected {SCHEMA_VERSION}")

    training = report.get("training") or {}
    for key in ("steps", "buckets_total"):
        expect(isinstance(training.get(key), int) and training.get(key, -1) >= 0,
               f"training.{key}: expected non-negative int")
    for key in ("total_seconds", "buckets_per_second"):
        expect(isinstance(training.get(key), float) and training.get(key, -1.0) >= 0,
               f"training.{key}: expected non-negative float")
    stages = training.get("stage_seconds") or {}
    expect(set(stages) == set(STAGE_NAMES),
           f"training.stage_seconds: expected stages {sorted(STAGE_NAMES)}")
    for stage, aggregate in stages.items():
        for key in ("count", "total_seconds", "mean_seconds", "max_seconds"):
            expect(isinstance(aggregate.get(key), (int, float)),
                   f"training.stage_seconds.{stage}.{key}: expected number")

    kernels = report.get("kernels") or {}
    timings = kernels.get("local_train_seconds")
    expect(isinstance(timings, dict) and "reference" in (timings or {}),
           "kernels.local_train_seconds: expected dict with 'reference'")
    for backend, seconds in (timings or {}).items():
        expect(isinstance(seconds, float) and seconds > 0,
               f"kernels.local_train_seconds.{backend}: expected positive float")
    speedups = kernels.get("speedup_vs_reference")
    expect(isinstance(speedups, dict) and "fast" in (speedups or {}),
           "kernels.speedup_vs_reference: expected dict with 'fast'")
    for backend, ratio in (speedups or {}).items():
        expect(isinstance(ratio, float) and ratio > 0,
               f"kernels.speedup_vs_reference.{backend}: expected positive float")
    expect(isinstance(kernels.get("numba_compiled"), bool),
           "kernels.numba_compiled: expected bool")

    sharded = report.get("sharded") or {}
    serial_section = sharded.get("serial") or {}
    expect(
        isinstance(serial_section.get("buckets_per_second"), float)
        and serial_section.get("buckets_per_second", -1.0) > 0,
        "sharded.serial.buckets_per_second: expected positive float",
    )
    worker_sections = sharded.get("workers")
    expect(isinstance(worker_sections, dict) and worker_sections,
           "sharded.workers: expected non-empty dict")
    cores = sharded.get("available_cores", 1)
    for count, entry in (worker_sections or {}).items():
        for key in ("seconds", "buckets_per_second", "speedup_vs_serial"):
            expect(
                isinstance(entry.get(key), float) and entry.get(key, -1.0) > 0,
                f"sharded.workers.{count}.{key}: expected positive float",
            )
        speedup = entry.get("speedup_vs_serial", 0.0)
        # Shipping overhead must stay bounded everywhere; genuine scaling
        # can only be demanded when the host has cores to scale onto.
        expect(
            speedup >= 0.5,
            f"sharded.workers.{count}: speedup {speedup:.2f}x vs serial is "
            "below the 0.5x overhead floor",
        )
        if isinstance(cores, int) and cores >= int(count) > 1:
            expect(
                speedup >= 0.6 * int(count),
                f"sharded.workers.{count}: expected near-linear scaling "
                f"(>= {0.6 * int(count):.1f}x) with {cores} cores available, "
                f"got {speedup:.2f}x",
            )
    expect(sharded.get("ledger_identical") is True,
           "sharded.ledger_identical: executors must produce one ledger")
    expect(sharded.get("embeddings_identical") is True,
           "sharded.embeddings_identical: executors must produce one model")

    serving = report.get("serving") or {}
    _validate_serving_section(serving, expect)

    sweep = report.get("sweep") or {}
    _validate_sweep_section(sweep, expect)

    evaluation = report.get("evaluation") or {}
    expect(isinstance(evaluation.get("hit_rate"), dict) and evaluation.get("hit_rate"),
           "evaluation.hit_rate: expected non-empty dict")
    for key in ("query_seconds_p50", "query_seconds_p95"):
        expect(isinstance(evaluation.get(key), float),
               f"evaluation.{key}: expected float")

    recommend = report.get("recommend") or {}
    expect(isinstance(recommend.get("queries"), int) and recommend.get("queries", 0) > 0,
           "recommend.queries: expected positive int")
    p50, p95 = recommend.get("p50_seconds"), recommend.get("p95_seconds")
    expect(isinstance(p50, float) and isinstance(p95, float) and p50 <= p95,
           "recommend: expected float p50_seconds <= p95_seconds")

    if problems:
        raise ValueError(
            "invalid benchmark report:\n  " + "\n  ".join(problems)
        )


def _validate_serving_section(serving: dict, expect) -> None:
    """Schema/sanity checks for the serving section (helper of
    :func:`validate_report`; also applied to ``--serving-only`` output).

    Structural facts and deterministic contracts are hard-gated (shed
    accounting, ``Retry-After`` on overload, the 0.95 ANN recall floor);
    the throughput ratio only has a >1x sanity floor here — the >=10x
    acceptance gate runs in CI where the load is controlled.
    """
    for phase in ("baseline", "sustained"):
        entry = serving.get(phase) or {}
        expect(
            isinstance(entry.get("req_per_s"), float)
            and entry.get("req_per_s", -1.0) > 0,
            f"serving.{phase}.req_per_s: expected positive float",
        )
        p50, p95 = entry.get("p50_seconds"), entry.get("p95_seconds")
        expect(
            isinstance(p50, float) and isinstance(p95, float) and 0 <= p50 <= p95,
            f"serving.{phase}: expected float p50_seconds <= p95_seconds",
        )
    sustained = serving.get("sustained") or {}
    expect(
        sustained.get("all_responded") is True,
        "serving.sustained.all_responded: silent request drops detected",
    )
    shed_rate = sustained.get("shed_rate")
    expect(
        isinstance(shed_rate, float) and 0.0 <= shed_rate <= 1.0,
        "serving.sustained.shed_rate: expected float in [0, 1]",
    )
    speedup = sustained.get("speedup_vs_baseline")
    expect(
        isinstance(speedup, float) and speedup > 1.0,
        "serving.sustained.speedup_vs_baseline: batched throughput must "
        "beat the serial per-request baseline",
    )
    overload = serving.get("overload") or {}
    expect(
        isinstance(overload.get("shed"), int) and overload.get("shed", 0) > 0,
        "serving.overload.shed: the overload burst must shed load",
    )
    expect(
        overload.get("retry_after_present") is True,
        "serving.overload.retry_after_present: 503 responses must carry "
        "Retry-After",
    )
    expect(
        overload.get("all_responded") is True,
        "serving.overload.all_responded: silent request drops detected",
    )
    ann = serving.get("ann") or {}
    recall = ann.get("recall")
    expect(
        isinstance(recall, float) and 0.0 <= recall <= 1.0,
        "serving.ann.recall: expected float in [0, 1]",
    )
    expect(
        isinstance(recall, float) and recall >= 0.95,
        "serving.ann.recall: below the 0.95 recall@10 contract",
    )


def _validate_sweep_section(sweep: dict, expect) -> None:
    """Schema/sanity checks for the sweep-orchestrator section (helper of
    :func:`validate_report`).

    Gates the orchestrator's perf contract: the fixed 8-run grid must
    complete without failures, parallel dispatch must make forward
    progress (positive runs/sec), and a resume over the completed sweep
    must skip every run while costing a small fraction of the fresh
    pass.
    """
    expect(
        isinstance(sweep.get("runs"), int) and sweep.get("runs", 0) >= 8,
        "sweep.runs: expected the >=8-run benchmark grid",
    )
    expect(
        isinstance(sweep.get("workers"), int) and sweep.get("workers", 0) >= 2,
        "sweep.workers: expected a parallel (>=2 worker) dispatch",
    )
    expect(
        sweep.get("executed") == sweep.get("runs"),
        "sweep.executed: the fresh pass must execute every run",
    )
    expect(sweep.get("failed") == 0, "sweep.failed: expected zero failed runs")
    for key in ("fresh_seconds", "runs_per_second", "resume_seconds"):
        expect(
            isinstance(sweep.get(key), float) and sweep.get(key, -1.0) > 0,
            f"sweep.{key}: expected positive float",
        )
    expect(
        sweep.get("resume_skipped") == sweep.get("runs"),
        "sweep.resume_skipped: resume must skip every completed run",
    )
    expect(
        sweep.get("resume_executed") == 0,
        "sweep.resume_executed: resume must re-execute nothing",
    )
    ratio = sweep.get("resume_overhead_ratio")
    expect(
        isinstance(ratio, float) and 0.0 <= ratio < 0.5,
        "sweep.resume_overhead_ratio: resume must cost <50% of a fresh run",
    )


def compare_to_baseline(
    report: dict, baseline: dict, threshold: float = _REGRESSION_THRESHOLD
) -> list[str]:
    """Diff a fresh report against a committed baseline.

    Returns one human-readable message per regression — training
    throughput (buckets/sec) dropping by more than ``threshold``, or the
    single-query recommend p95 growing by more than ``threshold``; an
    empty list means the report is at least as good as the baseline
    within the tolerance.

    Raises:
        ValueError: when the two reports are not like-for-like (different
            schema version, mode, or training backend) — a comparison
            would be meaningless, which is distinct from a pass.
    """
    for key in ("schema_version", "quick", "backend"):
        if report.get(key) != baseline.get(key):
            raise ValueError(
                f"baseline not comparable: {key} differs "
                f"({baseline.get(key)!r} -> {report.get(key)!r})"
            )

    regressions: list[str] = []
    old_rate = baseline["training"]["buckets_per_second"]
    new_rate = report["training"]["buckets_per_second"]
    if old_rate > 0 and new_rate < (1.0 - threshold) * old_rate:
        regressions.append(
            f"training throughput regressed >{threshold:.0%}: "
            f"{old_rate:.1f} -> {new_rate:.1f} buckets/sec"
        )
    old_p95 = baseline["recommend"]["p95_seconds"]
    new_p95 = report["recommend"]["p95_seconds"]
    if (
        old_p95 > 0
        and new_p95 > (1.0 + threshold) * old_p95
        and new_p95 - old_p95 > _P95_SLACK_SECONDS
    ):
        regressions.append(
            f"recommend p95 regressed >{threshold:.0%}: "
            f"{old_p95 * 1e3:.2f}ms -> {new_p95 * 1e3:.2f}ms"
        )
    return regressions


def _default_baseline() -> Path | None:
    """The committed repo-root ``BENCH_plp.json``, when running from a
    source checkout (``src/repro/bench.py`` -> two parents up)."""
    candidate = Path(__file__).resolve().parents[2] / "BENCH_plp.json"
    return candidate if candidate.is_file() else None


def add_bench_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the benchmark flags (shared by the CLI and the script)."""
    parser.add_argument(
        "--quick", action="store_true",
        help="seconds-scale smoke workload (CI); default is the full bench",
    )
    parser.add_argument("--out", default="BENCH_plp.json", help="report path")
    parser.add_argument("--seed", type=int, default=7, help="workload seed")
    parser.add_argument(
        "--backend",
        choices=("reference", "fast", "numba"),
        default="reference",
        help="compute backend for the pipeline training run (the kernel "
        "comparison always times every available backend)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="baseline report to diff against (default: the committed "
        "repo-root BENCH_plp.json; 'none' disables the check)",
    )
    parser.add_argument(
        "--serving-only",
        action="store_true",
        help="instead of the pipeline benchmark: run only the serving "
        "section (asyncio server throughput, overload shedding, ANN "
        "recall) and write a serving-only report",
    )
    parser.add_argument(
        "--out-of-core",
        action="store_true",
        help="instead of the pipeline benchmark: materialize a "
        "disk-backed corpus and train on it through the sharded "
        "executor, reporting throughput and peak RSS",
    )
    parser.add_argument(
        "--ooc-users", type=int, default=20_000,
        help="corpus size (users) for --out-of-core",
    )
    parser.add_argument(
        "--ooc-rounds", type=int, default=2,
        help="training rounds for --out-of-core",
    )
    parser.add_argument(
        "--ooc-workers", type=int, default=2,
        help="sharded-executor workers for --out-of-core",
    )
    parser.add_argument(
        "--rss-cap-mb", type=float, default=None,
        help="with --out-of-core: fail (exit 4) when the process peak "
        "RSS exceeds this many MiB",
    )


def _print_serving_summary(serving: dict) -> None:
    baseline = serving["baseline"]
    sustained = serving["sustained"]
    overload = serving["overload"]
    ann = serving["ann"]
    print(
        f"serving baseline: {baseline['req_per_s']:.0f} req/s serial "
        f"(p50={baseline['p50_seconds'] * 1e3:.2f}ms "
        f"p95={baseline['p95_seconds'] * 1e3:.2f}ms)"
    )
    print(
        f"serving sustained[{sustained['clients']} clients]: "
        f"{sustained['req_per_s']:.0f} req/s "
        f"({sustained['speedup_vs_baseline']:.1f}x baseline, "
        f"p50={sustained['p50_seconds'] * 1e3:.2f}ms "
        f"p95={sustained['p95_seconds'] * 1e3:.2f}ms, "
        f"shed rate {sustained['shed_rate']:.1%})"
    )
    print(
        f"serving overload: {overload['shed']}/{overload['requests']} shed "
        f"(Retry-After present={overload['retry_after_present']}, "
        f"all responded={overload['all_responded']})"
    )
    print(
        f"serving ann: recall@{ann['top_k']}={ann['recall']:.3f} "
        f"({ann['num_clusters']} clusters, nprobe={ann['nprobe']}, "
        f"L={ann['num_locations']})"
    )


def run_from_args(args: argparse.Namespace) -> int:
    """Execute the benchmark from parsed arguments (CLI entry point)."""
    if getattr(args, "serving_only", False):
        serving = measure_serving(seed=args.seed)
        problems: list[str] = []
        _validate_serving_section(
            serving,
            lambda ok, message: None if ok else problems.append(message),
        )
        if problems:
            raise ValueError(
                "invalid serving benchmark:\n  " + "\n  ".join(problems)
            )
        report = {"schema_version": SCHEMA_VERSION, "serving": serving}
        out = Path(args.out)
        out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
        print(f"wrote {out}")
        _print_serving_summary(serving)
        return 0

    if getattr(args, "out_of_core", False):
        report = run_out_of_core(
            users=args.ooc_users,
            rounds=args.ooc_rounds,
            workers=args.ooc_workers,
            rss_cap_mb=args.rss_cap_mb,
            seed=args.seed,
        )
        out = Path(args.out)
        out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
        section = report["out_of_core"]
        print(f"wrote {out}")
        print(
            f"out-of-core: {section['num_users']} users / "
            f"{section['num_checkins']} check-ins in "
            f"{section['num_shards']} shards "
            f"({section['store_bytes'] / 1e6:.1f} MB on disk, "
            f"built in {section['build_seconds']:.1f}s)"
        )
        print(
            f"  {section['rounds']} rounds with {section['workers']} workers "
            f"in {section['train_seconds']:.1f}s "
            f"({section['buckets_per_second']:.1f} buckets/s)"
        )
        peak = section["peak_rss_bytes"]
        if peak is not None:
            print(f"  peak RSS {peak / (1024 * 1024):.0f} MiB")
        if section["under_cap"] is False:
            print(
                f"RSS CAP EXCEEDED: peak {peak / (1024 * 1024):.0f} MiB > "
                f"cap {section['rss_cap_mb']:.0f} MiB"
            )
            return 4
        return 0

    report = run_benchmark(
        quick=args.quick, seed=args.seed, backend=args.backend
    )
    out = Path(args.out)
    out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    training = report["training"]
    print(f"wrote {out}")
    print(
        f"training: {training['steps']} steps in "
        f"{training['total_seconds']:.2f}s "
        f"({training['buckets_per_second']:.1f} buckets/s, "
        f"backend={report['backend']})"
    )
    for stage, aggregate in training["stage_seconds"].items():
        print(f"  {stage:<12} {aggregate['total_seconds']:.4f}s total")
    kernels = report["kernels"]
    for backend, seconds in kernels["local_train_seconds"].items():
        speedup = kernels["speedup_vs_reference"].get(backend)
        suffix = f" ({speedup:.2f}x vs reference)" if speedup else ""
        print(f"kernel local_train[{backend}]: {seconds:.3f}s{suffix}")
    sharded = report["sharded"]
    cores = sharded.get("available_cores", "?")
    for count, entry in sharded["workers"].items():
        print(
            f"sharded[{count} workers, {cores} cores]: "
            f"{entry['buckets_per_second']:.1f} "
            f"buckets/s ({entry['speedup_vs_serial']:.2f}x vs serial, "
            f"identical ledger={sharded['ledger_identical']})"
        )
    _print_serving_summary(report["serving"])
    sweep = report["sweep"]
    print(
        f"sweep[{sweep['workers']} workers]: {sweep['runs']} runs in "
        f"{sweep['fresh_seconds']:.1f}s ({sweep['runs_per_second']:.2f} runs/s); "
        f"resume skipped {sweep['resume_skipped']}/{sweep['runs']} in "
        f"{sweep['resume_seconds']:.2f}s "
        f"({sweep['resume_overhead_ratio']:.1%} of fresh)"
    )
    print(
        f"recommend: p50={report['recommend']['p50_seconds'] * 1e3:.2f}ms "
        f"p95={report['recommend']['p95_seconds'] * 1e3:.2f}ms"
    )
    print(f"evaluation: HR {report['evaluation']['hit_rate']}")

    baseline_path: Path | None
    if args.baseline is None:
        baseline_path = _default_baseline()
    elif str(args.baseline).lower() == "none":
        baseline_path = None
    else:
        baseline_path = Path(args.baseline)
        if not baseline_path.is_file():
            print(f"error: baseline not found: {baseline_path}")
            return 2
    if baseline_path is None:
        print("baseline: no baseline report; comparison skipped")
        return 0
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    try:
        regressions = compare_to_baseline(report, baseline)
    except ValueError as error:
        print(f"baseline: comparison skipped ({error})")
        return 0
    if regressions:
        for message in regressions:
            print(f"REGRESSION vs {baseline_path}: {message}")
        return 3
    print(f"baseline: ok (within {_REGRESSION_THRESHOLD:.0%} of {baseline_path})")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    add_bench_arguments(parser)
    return run_from_args(parser.parse_args(argv))


if __name__ == "__main__":
    raise SystemExit(main())
