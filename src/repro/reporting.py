"""Plain-text reporting helpers: tables and ASCII charts.

The library runs on plot-free machines (CI, servers), so training curves
and sweep results render as text. Used by the examples and available to
downstream scripts.
"""

from __future__ import annotations

from typing import Sequence

from repro.exceptions import ConfigError

_BLOCKS = " ▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """One-line unicode sparkline of a numeric series.

    Non-finite values render as spaces; a constant series renders at
    mid-height.
    """
    import math

    finite = [v for v in values if math.isfinite(v)]
    if not finite:
        return " " * len(values)
    low, high = min(finite), max(finite)
    span = high - low
    chars = []
    for value in values:
        if not math.isfinite(value):
            chars.append(" ")
        elif span == 0:
            chars.append(_BLOCKS[4])
        else:
            level = int((value - low) / span * (len(_BLOCKS) - 2)) + 1
            chars.append(_BLOCKS[level])
    return "".join(chars)


def ascii_chart(
    values: Sequence[float],
    height: int = 8,
    width: int | None = None,
    label: str = "",
) -> str:
    """Multi-line ASCII line chart of a numeric series.

    Args:
        values: the series to plot.
        height: chart rows.
        width: downsample the series to this many columns (None = as is).
        label: optional y-axis label printed above the chart.

    Returns:
        The rendered chart as a newline-joined string.
    """
    import math

    if height < 2:
        raise ConfigError(f"height must be >= 2, got {height}")
    series = [float(v) for v in values if math.isfinite(v)]
    if not series:
        raise ConfigError("no finite values to plot")
    if width is not None and len(series) > width:
        # Bucket-mean downsampling.
        bucket = len(series) / width
        series = [
            sum(series[int(i * bucket) : max(int(i * bucket) + 1, int((i + 1) * bucket))])
            / max(1, len(series[int(i * bucket) : max(int(i * bucket) + 1, int((i + 1) * bucket))]))
            for i in range(width)
        ]
    low, high = min(series), max(series)
    span = high - low or 1.0
    rows = []
    for row in range(height, 0, -1):
        threshold = low + span * (row - 0.5) / height
        line = "".join("█" if value >= threshold else " " for value in series)
        rows.append(line)
    header = [f"{label}  max={high:.4g}  min={low:.4g}"] if label else []
    return "\n".join(header + rows)


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence], title: str = ""
) -> str:
    """Fixed-width text table (floats at 4 decimals)."""

    def fmt(value) -> str:
        if isinstance(value, float):
            return f"{value:.4f}"
        return str(value)

    if not headers:
        raise ConfigError("headers must be non-empty")
    widths = [
        max(len(str(header)), *(len(fmt(row[i])) for row in rows)) if rows else len(str(header))
        for i, header in enumerate(headers)
    ]
    lines = []
    if title:
        lines += [title, "-" * len(title)]
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    for row in rows:
        lines.append("  ".join(fmt(v).ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)
