"""Core value types shared across the :mod:`repro` packages.

The paper's data model (Section 3.1): a set of users ``U``, a set of
check-in locations (POIs) ``P``, and for each user a historical record of
check-ins ``Uu = {c1, c2, ...}`` where each element is a triplet
``<user, location, time>``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence


@dataclass(frozen=True, slots=True)
class CheckIn:
    """One check-in record: the triplet ``<user, location, time>``.

    Attributes:
        user: user identifier.
        location: POI identifier.
        timestamp: seconds since an arbitrary epoch (ordering is what
            matters; the paper sessionizes on 6-hour gaps).
        latitude: optional POI latitude (used by the geo-ind extension
            and the bounding-box preprocessing filter).
        longitude: optional POI longitude.
    """

    user: int
    location: int
    timestamp: float
    latitude: float = float("nan")
    longitude: float = float("nan")

    def has_coordinates(self) -> bool:
        """Return ``True`` when both latitude and longitude are present."""
        return self.latitude == self.latitude and self.longitude == self.longitude


@dataclass(frozen=True, slots=True)
class Trajectory:
    """A time-ordered sequence of locations visited by one user.

    A trajectory is the unit used both for skip-gram window generation (a
    "sentence") and for leave-one-out evaluation (first ``t - 1`` visits
    predict the ``t``-th).
    """

    user: int
    locations: tuple[int, ...]
    timestamps: tuple[float, ...] = ()

    def __post_init__(self) -> None:
        if self.timestamps and len(self.timestamps) != len(self.locations):
            raise ValueError(
                "timestamps and locations must have equal length "
                f"({len(self.timestamps)} != {len(self.locations)})"
            )

    def __len__(self) -> int:
        return len(self.locations)

    def __iter__(self) -> Iterator[int]:
        return iter(self.locations)

    @property
    def duration(self) -> float:
        """Total time span of the trajectory in seconds (0 if untimed)."""
        if len(self.timestamps) < 2:
            return 0.0
        return self.timestamps[-1] - self.timestamps[0]

    def prefix(self, length: int) -> "Trajectory":
        """Return the trajectory truncated to its first ``length`` visits."""
        return Trajectory(
            user=self.user,
            locations=self.locations[:length],
            timestamps=self.timestamps[:length] if self.timestamps else (),
        )


@dataclass(slots=True)
class UserHistory:
    """All check-ins of one user, kept in timestamp order."""

    user: int
    checkins: list[CheckIn] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.checkins)

    def add(self, checkin: CheckIn) -> None:
        """Append a check-in, keeping the history sorted by timestamp."""
        if checkin.user != self.user:
            raise ValueError(
                f"check-in for user {checkin.user} added to history of {self.user}"
            )
        self.checkins.append(checkin)
        if len(self.checkins) > 1 and checkin.timestamp < self.checkins[-2].timestamp:
            self.checkins.sort(key=lambda c: c.timestamp)

    def locations(self) -> list[int]:
        """Return the visited location ids in time order."""
        return [c.location for c in self.checkins]

    def timestamps(self) -> list[float]:
        """Return the check-in timestamps in time order."""
        return [c.timestamp for c in self.checkins]


def group_by_user(checkins: Iterable[CheckIn]) -> dict[int, UserHistory]:
    """Partition a stream of check-ins into per-user histories.

    Args:
        checkins: any iterable of :class:`CheckIn` records, in any order.

    Returns:
        Mapping from user id to that user's time-sorted :class:`UserHistory`.
    """
    histories: dict[int, UserHistory] = {}
    for checkin in checkins:
        history = histories.get(checkin.user)
        if history is None:
            history = UserHistory(user=checkin.user)
            histories[checkin.user] = history
        history.add(checkin)
    for history in histories.values():
        history.checkins.sort(key=lambda c: c.timestamp)
    return histories


def validate_sequences(sequences: Sequence[Sequence[int]]) -> None:
    """Validate raw location sequences used as model input.

    Raises:
        ValueError: if any sequence is empty or contains a negative id.
    """
    for i, sequence in enumerate(sequences):
        if len(sequence) == 0:
            raise ValueError(f"sequence {i} is empty")
        for location in sequence:
            if location < 0:
                raise ValueError(f"sequence {i} contains negative location id")
