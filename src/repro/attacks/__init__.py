"""Privacy attacks for auditing trained location models.

The paper's introduction motivates DP training with concrete threats:
"membership inference, where an adversary who has access to the model and
some information about a targeted individual can learn whether the
target's data was used to train the model" (Shokri et al. 2017; Hayes et
al. 2019). This package implements a user-level membership-inference
audit against released location embeddings, so the DP guarantee can be
checked *empirically* as well as analytically.
"""

from repro.attacks.membership import (
    AttackResult,
    MembershipInferenceAttack,
    attack_auc,
    trajectory_affinity,
)

__all__ = [
    "MembershipInferenceAttack",
    "AttackResult",
    "attack_auc",
    "trajectory_affinity",
]
