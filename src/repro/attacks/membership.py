"""User-level membership inference against location embeddings.

Threat model: the adversary holds the *released artifact* (the normalized
embedding matrix + vocabulary — exactly what Section 3.3 deploys) and the
full check-in history of a target user, and must decide whether that user
was in the training set.

Attack statistic: skip-gram training pulls the embeddings of co-visited
locations together, so a training user's *own* co-visit pairs score higher
cosine affinity under the model than a non-member's. The attack computes
each user's mean within-window embedding affinity
(:func:`trajectory_affinity`) and thresholds it. Its success is summarized
by the ROC AUC over member/non-member scores and by the *membership
advantage* ``max_t (TPR(t) - FPR(t))`` (Yeom et al. 2018).

A user-level (epsilon, delta)-DP model bounds any such attack:
``advantage <= e^epsilon - 1 + 2*delta`` (loose for large epsilon but
meaningful for small). Empirically, DP-trained embeddings should drive
the AUC toward 0.5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.exceptions import ConfigError
from repro.models.embeddings import EmbeddingMatrix
from repro.models.vocabulary import LocationVocabulary
from repro.models.windowing import pairs_from_sequence


def trajectory_affinity(
    embeddings: EmbeddingMatrix,
    sequences: Sequence[Sequence[int]],
    window: int = 2,
) -> float:
    """Mean cosine affinity of a user's within-window location pairs.

    Args:
        embeddings: released (normalized) location embeddings.
        sequences: the user's location-token sequences.
        window: context radius matching the training configuration.

    Returns:
        Mean ``cos(emb[target], emb[context])`` over all window pairs; 0.0
        when the user has no pairs (affinity indistinguishable from noise).
    """
    matrix = embeddings.matrix
    total = 0.0
    count = 0
    for sequence in sequences:
        pairs = pairs_from_sequence(list(sequence), window) if len(sequence) > 1 else []
        for target, context in pairs:
            if target == context:
                continue  # self-pairs are trivially affine
            total += float(matrix[target] @ matrix[context])
            count += 1
    return total / count if count else 0.0


def attack_auc(
    member_scores: Sequence[float], nonmember_scores: Sequence[float]
) -> float:
    """ROC AUC of the thresholding attack (Mann-Whitney U statistic).

    Args:
        member_scores: attack scores of true training users.
        nonmember_scores: attack scores of users outside the training set.

    Returns:
        P(member score > non-member score) + 0.5 P(tie), in [0, 1]; 0.5
        means the attack cannot distinguish membership.
    """
    members = np.asarray(member_scores, dtype=np.float64)
    nonmembers = np.asarray(nonmember_scores, dtype=np.float64)
    if members.size == 0 or nonmembers.size == 0:
        raise ConfigError("both member and non-member scores are required")
    greater = (members[:, None] > nonmembers[None, :]).sum()
    ties = (members[:, None] == nonmembers[None, :]).sum()
    return float((greater + 0.5 * ties) / (members.size * nonmembers.size))


def membership_advantage(
    member_scores: Sequence[float], nonmember_scores: Sequence[float]
) -> float:
    """Best-threshold membership advantage ``max_t (TPR(t) - FPR(t))``."""
    members = np.asarray(member_scores, dtype=np.float64)
    nonmembers = np.asarray(nonmember_scores, dtype=np.float64)
    if members.size == 0 or nonmembers.size == 0:
        raise ConfigError("both member and non-member scores are required")
    thresholds = np.unique(np.concatenate([members, nonmembers]))
    best = 0.0
    for threshold in thresholds:
        tpr = float((members >= threshold).mean())
        fpr = float((nonmembers >= threshold).mean())
        best = max(best, tpr - fpr)
    return best


@dataclass(frozen=True, slots=True)
class AttackResult:
    """Outcome of a membership-inference audit."""

    auc: float
    advantage: float
    num_members: int
    num_nonmembers: int

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"MIA AUC={self.auc:.3f} advantage={self.advantage:.3f} "
            f"({self.num_members} members vs {self.num_nonmembers} non-members)"
        )


class MembershipInferenceAttack:
    """Affinity-threshold membership inference against released embeddings.

    Args:
        embeddings: the released embedding matrix.
        vocabulary: the released vocabulary (maps raw POI ids to tokens;
            unknown POIs in a user's history are dropped, as the adversary
            cannot score them).
        window: context radius assumed by the adversary (the training
            default of 2 is public knowledge via the paper).
    """

    def __init__(
        self,
        embeddings: EmbeddingMatrix,
        vocabulary: LocationVocabulary | None = None,
        window: int = 2,
    ) -> None:
        if window < 1:
            raise ConfigError(f"window must be >= 1, got {window}")
        self.embeddings = embeddings
        self.vocabulary = vocabulary
        self.window = window

    def score_user(self, sequences: Sequence[Sequence] ) -> float:
        """Attack score for one user (higher = more likely a member)."""
        if self.vocabulary is not None:
            encoded = [
                self.vocabulary.encode_known(sequence) for sequence in sequences
            ]
        else:
            encoded = [list(map(int, sequence)) for sequence in sequences]
        return trajectory_affinity(self.embeddings, encoded, self.window)

    def audit(
        self,
        member_histories: Sequence[Sequence[Sequence]],
        nonmember_histories: Sequence[Sequence[Sequence]],
    ) -> AttackResult:
        """Run the audit over known member/non-member user histories.

        Args:
            member_histories: per-user lists of location sequences for
                users known to be in the training set.
            nonmember_histories: same, for users known to be outside it.

        Returns:
            The attack's AUC and best-threshold advantage.
        """
        member_scores = [self.score_user(h) for h in member_histories]
        nonmember_scores = [self.score_user(h) for h in nonmember_histories]
        return AttackResult(
            auc=attack_auc(member_scores, nonmember_scores),
            advantage=membership_advantage(member_scores, nonmember_scores),
            num_members=len(member_scores),
            num_nonmembers=len(nonmember_scores),
        )
