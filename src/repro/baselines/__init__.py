"""Related-work baseline recommenders (Section 6).

Non-neural next-location predictors the paper positions itself against:
global popularity ranking, order-m Markov chains (Zhang et al.), and
implicit-feedback matrix factorization (Lian et al.). They share the
scoring interface of :class:`repro.models.recommender.NextLocationRecommender`
(``score_all`` / ``recommend``) so the leave-one-out evaluator runs on all
of them unchanged.
"""

from repro.baselines.popularity import PopularityRecommender
from repro.baselines.markov import MarkovChainRecommender
from repro.baselines.matrix_factorization import MatrixFactorizationRecommender

__all__ = [
    "PopularityRecommender",
    "MarkovChainRecommender",
    "MatrixFactorizationRecommender",
]
