"""Global-popularity recommender: the weakest sensible baseline.

Ranks every location by its training-set check-in count, ignoring the
query user's recent locations entirely. Any model exploiting sequence
structure should beat it — the X-BASE ablation bench checks that the
skip-gram does.
"""

from __future__ import annotations

from collections import Counter
from typing import Hashable, Iterable, Sequence

import numpy as np

from repro.exceptions import DataError
from repro.models.embeddings import top_k_indices


class PopularityRecommender:
    """Ranks locations by global visit frequency."""

    def __init__(self, sequences: Iterable[Sequence[int]], num_locations: int) -> None:
        if num_locations < 1:
            raise DataError(f"num_locations must be >= 1, got {num_locations}")
        self.num_locations = int(num_locations)
        counts: Counter[int] = Counter()
        for sequence in sequences:
            counts.update(sequence)
        self._scores = np.zeros(self.num_locations, dtype=np.float64)
        for token, count in counts.items():
            if not 0 <= token < self.num_locations:
                raise DataError(f"token {token} out of range [0, {self.num_locations})")
            self._scores[token] = float(count)
        total = self._scores.sum()
        if total > 0:
            self._scores /= total

    # vocabulary is part of the shared recommender interface; popularity
    # works directly on tokens.
    vocabulary = None

    def score_all(self, recent: Sequence[Hashable]) -> np.ndarray:
        """Popularity scores (identical for every query)."""
        del recent
        return self._scores.copy()

    def score_batch(
        self, queries: Sequence[Sequence[Hashable]], mode: str = "exact"
    ) -> np.ndarray:
        """One (identical) popularity row per query."""
        del mode
        return np.tile(self._scores, (len(queries), 1))

    def recommend(
        self, recent: Sequence[Hashable], top_k: int = 10
    ) -> list[tuple[int, float]]:
        """Top-K most popular locations."""
        scores = self.score_all(recent)
        top = top_k_indices(scores, top_k)
        return [(int(token), float(scores[token])) for token in top]


def popularity_prior(vocabulary) -> np.ndarray:
    """Normalized visit-frequency prior over a vocabulary's tokens.

    The serving layer uses this as the graceful-degradation ranking for
    queries in which no location is known to the model (see
    ``NextLocationRecommender.fallback_scores``). Falls back to the uniform
    distribution when the vocabulary carries no occurrence counts — e.g. a
    vocabulary rebuilt from a deployable artifact saved without counts.

    Args:
        vocabulary: a :class:`~repro.models.vocabulary.LocationVocabulary`
            (anything with ``size`` and ``count(token)``).

    Raises:
        DataError: when the vocabulary is empty.
    """
    size = vocabulary.size
    if size < 1:
        raise DataError("popularity prior requires a non-empty vocabulary")
    counts = np.array(
        [vocabulary.count(token) for token in range(size)], dtype=np.float64
    )
    total = counts.sum()
    if total <= 0:
        return np.full(size, 1.0 / size)
    return counts / total
