"""Order-m Markov chain next-location predictor.

"MC-based methods utilize a per-user transition matrix comprised of
location-location transition probabilities computed from the historical
record of check-ins. The m-th-order Markov chains emit the probability of
the user visiting the next location based on the latest m visited
locations" (Section 6). This implementation pools transitions across users
(a *global* chain), since the evaluation targets held-out users for whom
no personal matrix exists, and backs off to lower orders — ultimately to
global popularity — when a context was never observed.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Hashable, Iterable, Sequence

import numpy as np

from repro.exceptions import ConfigError, DataError
from repro.models.embeddings import top_k_indices


class MarkovChainRecommender:
    """Global order-m Markov chain with back-off smoothing.

    Args:
        sequences: training location-token sequences.
        num_locations: vocabulary size L.
        order: chain order m (>= 1).
        smoothing: additive (Laplace) smoothing weight blended with the
            empirical transition distribution.
    """

    def __init__(
        self,
        sequences: Iterable[Sequence[int]],
        num_locations: int,
        order: int = 1,
        smoothing: float = 1e-3,
    ) -> None:
        if num_locations < 1:
            raise DataError(f"num_locations must be >= 1, got {num_locations}")
        if order < 1:
            raise ConfigError(f"order must be >= 1, got {order}")
        if smoothing < 0.0:
            raise ConfigError(f"smoothing must be >= 0, got {smoothing}")
        self.num_locations = int(num_locations)
        self.order = int(order)
        self.smoothing = float(smoothing)
        # transitions[k][context_tuple] = Counter(next_location)
        self._transitions: list[dict[tuple[int, ...], Counter]] = [
            defaultdict(Counter) for _ in range(self.order)
        ]
        self._popularity = np.zeros(self.num_locations, dtype=np.float64)
        for sequence in sequences:
            self._ingest(list(sequence))
        total = self._popularity.sum()
        if total > 0:
            self._popularity /= total

    vocabulary = None

    def _ingest(self, sequence: list[int]) -> None:
        for token in sequence:
            if not 0 <= token < self.num_locations:
                raise DataError(f"token {token} out of range [0, {self.num_locations})")
            self._popularity[token] += 1.0
        for position in range(1, len(sequence)):
            next_location = sequence[position]
            for k in range(1, self.order + 1):
                if position - k < 0:
                    break
                context = tuple(sequence[position - k : position])
                self._transitions[k - 1][context][next_location] += 1.0

    def score_all(self, recent: Sequence[Hashable]) -> np.ndarray:
        """Next-location distribution given the recent tokens.

        Uses the longest available context with observed transitions, then
        backs off; unseen contexts fall back to global popularity. A
        uniform smoothing mass keeps every location scoreable.
        """
        recent_tokens = [int(token) for token in recent]
        scores = None
        for k in range(min(self.order, len(recent_tokens)), 0, -1):
            context = tuple(recent_tokens[-k:])
            counter = self._transitions[k - 1].get(context)
            if counter:
                scores = np.zeros(self.num_locations, dtype=np.float64)
                total = sum(counter.values())
                for token, count in counter.items():
                    scores[token] = count / total
                break
        if scores is None:
            scores = self._popularity.copy()
        if self.smoothing > 0.0:
            scores = (1.0 - self.smoothing) * scores + self.smoothing / self.num_locations
        return scores

    def recommend(
        self, recent: Sequence[Hashable], top_k: int = 10
    ) -> list[tuple[int, float]]:
        """Top-K next locations under the backed-off chain."""
        scores = self.score_all(recent)
        top = top_k_indices(scores, top_k)
        return [(int(token), float(scores[token])) for token in top]
