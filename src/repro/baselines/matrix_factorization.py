"""Implicit-feedback matrix factorization baseline.

"Matrices containing implicit user feedback on locations can also be
exploited for location recommendation via weighted matrix factorization"
(Section 6, Lian et al. GeoMF lineage). This is a compact SGD-trained
factorization of the binary user-location visit matrix with negative
sampling. For held-out users (who have no learned user factor), scoring
folds the recent locations into a pseudo user vector — the mean of their
item factors — mirroring how the skip-gram recommender builds F(zeta).
"""

from __future__ import annotations

from typing import Hashable, Sequence

import numpy as np

from repro.exceptions import ConfigError, DataError
from repro.models.embeddings import top_k_indices
from repro.nn.functional import sigmoid
from repro.rng import RngLike, ensure_rng


class MatrixFactorizationRecommender:
    """Logistic matrix factorization of the user-location visit matrix.

    Args:
        sequences: per-user training sequences (index = user).
        num_locations: vocabulary size L.
        factors: latent dimensionality.
        epochs: SGD passes over the positive interactions.
        learning_rate: SGD step size.
        regularization: l2 weight on both factor matrices.
        negatives_per_positive: sampled non-visited locations per positive.
        rng: seed or generator.
    """

    def __init__(
        self,
        sequences: Sequence[Sequence[int]],
        num_locations: int,
        factors: int = 32,
        epochs: int = 10,
        learning_rate: float = 0.05,
        regularization: float = 1e-4,
        negatives_per_positive: int = 4,
        rng: RngLike = None,
    ) -> None:
        if num_locations < 1:
            raise DataError(f"num_locations must be >= 1, got {num_locations}")
        if factors < 1:
            raise ConfigError(f"factors must be >= 1, got {factors}")
        if epochs < 1:
            raise ConfigError(f"epochs must be >= 1, got {epochs}")
        if learning_rate <= 0.0:
            raise ConfigError(f"learning_rate must be positive, got {learning_rate}")
        if negatives_per_positive < 1:
            raise ConfigError(
                f"negatives_per_positive must be >= 1, got {negatives_per_positive}"
            )
        self.num_locations = int(num_locations)
        self.factors = int(factors)
        generator = ensure_rng(rng)

        interactions = self._collect_interactions(sequences)
        num_users = len(sequences)
        scale = 1.0 / np.sqrt(self.factors)
        self._user_factors = generator.normal(0.0, scale, size=(num_users, factors))
        self._item_factors = generator.normal(
            0.0, scale, size=(self.num_locations, factors)
        )
        self._train(
            interactions,
            epochs,
            learning_rate,
            regularization,
            negatives_per_positive,
            generator,
        )

    vocabulary = None

    def _collect_interactions(
        self, sequences: Sequence[Sequence[int]]
    ) -> np.ndarray:
        rows: list[tuple[int, int]] = []
        for user, sequence in enumerate(sequences):
            # dict.fromkeys dedupes while keeping first-visit order, so the
            # interaction matrix's row order never depends on set hashing.
            for token in dict.fromkeys(sequence):
                if not 0 <= token < self.num_locations:
                    raise DataError(
                        f"token {token} out of range [0, {self.num_locations})"
                    )
                rows.append((user, token))
        if not rows:
            raise DataError("no user-location interactions to factorize")
        return np.asarray(rows, dtype=np.int64)

    def _train(
        self,
        interactions: np.ndarray,
        epochs: int,
        learning_rate: float,
        regularization: float,
        negatives: int,
        rng: np.random.Generator,
    ) -> None:
        for _ in range(epochs):
            order = rng.permutation(interactions.shape[0])
            for index in order:
                user, positive = interactions[index]
                self._sgd_update(user, positive, 1.0, learning_rate, regularization)
                for negative in rng.integers(0, self.num_locations, size=negatives):
                    self._sgd_update(
                        user, int(negative), 0.0, learning_rate, regularization
                    )

    def _sgd_update(
        self, user: int, item: int, label: float, lr: float, reg: float
    ) -> None:
        user_vec = self._user_factors[user]
        item_vec = self._item_factors[item]
        prediction = float(sigmoid(np.array([user_vec @ item_vec]))[0])
        error = prediction - label
        self._user_factors[user] = user_vec - lr * (error * item_vec + reg * user_vec)
        self._item_factors[item] = item_vec - lr * (error * user_vec + reg * item_vec)

    def score_all(self, recent: Sequence[Hashable]) -> np.ndarray:
        """Scores via a pseudo user vector folded from recent item factors."""
        tokens = np.asarray([int(token) for token in recent], dtype=np.int64)
        if tokens.size == 0:
            raise ConfigError("score_all requires at least one recent location")
        if np.any(tokens < 0) or np.any(tokens >= self.num_locations):
            raise ConfigError("recent tokens out of range")
        pseudo_user = self._item_factors[tokens].mean(axis=0)
        return self._item_factors @ pseudo_user

    def recommend(
        self, recent: Sequence[Hashable], top_k: int = 10
    ) -> list[tuple[int, float]]:
        """Top-K locations by folded-in dot-product score."""
        scores = self.score_all(recent)
        top = top_k_indices(scores, top_k)
        return [(int(token), float(scores[token])) for token in top]
