"""repro: Differentially-Private Next-Location Prediction with Neural Networks.

A from-scratch reproduction of Ahuja, Ghinita & Shahabi (EDBT 2020). The
stable facade (:mod:`repro.api`) covers the end-to-end workflow in four
names::

    import repro

    checkins = repro.paper_preprocessing(
        repro.generate_checkins(repro.SyntheticConfig(), rng=7)
    )
    train, holdout = repro.holdout_users_split(
        repro.CheckinDataset(checkins), 30, rng=7
    )
    model = repro.train(repro.PLPConfig(epsilon=2.0), train, rng=7)
    model.save("model.npz")
    print(repro.evaluate(model, holdout).summary())

    model = repro.load("model.npz")
    model.recommend_batch([[17, 42], [8]], top_k=10)

The lower-level classes (trainers, engine, evaluator, serving stack) are
also re-exported for callers that need the knobs.

Subpackages:
    - :mod:`repro.core` — Algorithm 1 (PLP) and the paper's baselines.
    - :mod:`repro.privacy` — mechanisms, clipping, moments accountant.
    - :mod:`repro.models` — the skip-gram location model.
    - :mod:`repro.nn` — NumPy neural-network substrate.
    - :mod:`repro.data` — synthetic/real check-in data and preprocessing.
    - :mod:`repro.eval` — leave-one-out Hit-Rate evaluation.
    - :mod:`repro.baselines` — popularity / Markov / MF recommenders.
    - :mod:`repro.geoind` — geo-indistinguishability extension.
    - :mod:`repro.serving` — batched inference and the ``repro serve`` HTTP
      layer.
    - :mod:`repro.observability` — unified tracing, metrics, and profiling
      across training, serving, and evaluation.
"""

from repro.api import (
    MetricsRegistry,
    Observability,
    ServingConfig,
    TrainedModel,
    Tracer,
    evaluate,
    load,
    serve,
    train,
    with_observability,
)
from repro.observability import Observer
from repro.exceptions import (
    ConfigError,
    DataError,
    ExecutorError,
    NotFittedError,
    PrivacyBudgetExceeded,
    ReproError,
    ServingError,
    VocabularyError,
)
from repro.types import CheckIn, Trajectory
from repro.core import (
    BucketExecutor,
    NonPrivateTrainer,
    ParallelExecutor,
    PLPConfig,
    PrivateLocationPredictor,
    SerialExecutor,
    StepObserver,
    TrainingEngine,
    UserLevelDPSGD,
)
from repro.data import (
    CheckinDataset,
    SyntheticConfig,
    TOKYO_BBOX,
    generate_checkins,
    holdout_users_split,
    load_foursquare_tsv,
    paper_preprocessing,
    sessionize_dataset,
)
from repro.eval import LeaveOneOutEvaluator, hit_rate_at_k, paired_t_test
from repro.models import (
    EmbeddingMatrix,
    LocationVocabulary,
    NextLocationRecommender,
    SkipGramModel,
)
from repro.privacy import (
    GaussianMechanism,
    MomentsAccountant,
    PrivacyLedger,
    calibrate_noise_multiplier,
    compute_epsilon,
    max_steps_for_budget,
)
from repro.attacks import MembershipInferenceAttack
from repro.experiments import ExperimentRunner, SweepSpec
from repro.models.serialization import (
    load_deployable_model,
    load_recommender,
    load_training_checkpoint,
    save_deployable_model,
    save_training_checkpoint,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # facade (repro.api): the stable surface
    "train",
    "load",
    "evaluate",
    "serve",
    "ServingConfig",
    "TrainedModel",
    # observability (also part of the stable surface)
    "Tracer",
    "MetricsRegistry",
    "Observability",
    "Observer",
    "with_observability",
    # exceptions
    "ReproError",
    "ConfigError",
    "DataError",
    "ExecutorError",
    "PrivacyBudgetExceeded",
    "NotFittedError",
    "ServingError",
    "VocabularyError",
    # types
    "CheckIn",
    "Trajectory",
    # core
    "PLPConfig",
    "PrivateLocationPredictor",
    "UserLevelDPSGD",
    "NonPrivateTrainer",
    # engine
    "TrainingEngine",
    "BucketExecutor",
    "SerialExecutor",
    "ParallelExecutor",
    "StepObserver",
    # data
    "CheckinDataset",
    "SyntheticConfig",
    "TOKYO_BBOX",
    "generate_checkins",
    "load_foursquare_tsv",
    "paper_preprocessing",
    "holdout_users_split",
    "sessionize_dataset",
    # eval
    "LeaveOneOutEvaluator",
    "hit_rate_at_k",
    "paired_t_test",
    # models
    "SkipGramModel",
    "LocationVocabulary",
    "EmbeddingMatrix",
    "NextLocationRecommender",
    # privacy
    "GaussianMechanism",
    "MomentsAccountant",
    "PrivacyLedger",
    "compute_epsilon",
    "calibrate_noise_multiplier",
    "max_steps_for_budget",
    # extensions
    "MembershipInferenceAttack",
    "ExperimentRunner",
    "SweepSpec",
    "save_deployable_model",
    "load_deployable_model",
    "load_recommender",
    "save_training_checkpoint",
    "load_training_checkpoint",
]
