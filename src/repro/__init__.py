"""repro: Differentially-Private Next-Location Prediction with Neural Networks.

A from-scratch reproduction of Ahuja, Ghinita & Shahabi (EDBT 2020). The
public API re-exported here covers the end-to-end workflow::

    from repro import (
        SyntheticConfig, generate_checkins, CheckinDataset, paper_preprocessing,
        holdout_users_split, sessionize_dataset,
        PLPConfig, PrivateLocationPredictor, UserLevelDPSGD, NonPrivateTrainer,
        LeaveOneOutEvaluator,
    )

    checkins = paper_preprocessing(generate_checkins(SyntheticConfig(), rng=7))
    train, holdout = holdout_users_split(CheckinDataset(checkins), 30, rng=7)
    plp = PrivateLocationPredictor(PLPConfig(epsilon=2.0), rng=7)
    plp.fit(train)
    evaluator = LeaveOneOutEvaluator(sessionize_dataset(holdout))
    print(evaluator.evaluate(plp.recommender()).summary())

Subpackages:
    - :mod:`repro.core` — Algorithm 1 (PLP) and the paper's baselines.
    - :mod:`repro.privacy` — mechanisms, clipping, moments accountant.
    - :mod:`repro.models` — the skip-gram location model.
    - :mod:`repro.nn` — NumPy neural-network substrate.
    - :mod:`repro.data` — synthetic/real check-in data and preprocessing.
    - :mod:`repro.eval` — leave-one-out Hit-Rate evaluation.
    - :mod:`repro.baselines` — popularity / Markov / MF recommenders.
    - :mod:`repro.geoind` — geo-indistinguishability extension.
"""

from repro.exceptions import (
    ConfigError,
    DataError,
    ExecutorError,
    NotFittedError,
    PrivacyBudgetExceeded,
    ReproError,
    VocabularyError,
)
from repro.types import CheckIn, Trajectory
from repro.core import (
    BucketExecutor,
    NonPrivateTrainer,
    ParallelExecutor,
    PLPConfig,
    PrivateLocationPredictor,
    SerialExecutor,
    StepObserver,
    TrainingEngine,
    UserLevelDPSGD,
)
from repro.data import (
    CheckinDataset,
    SyntheticConfig,
    TOKYO_BBOX,
    generate_checkins,
    holdout_users_split,
    load_foursquare_tsv,
    paper_preprocessing,
    sessionize_dataset,
)
from repro.eval import LeaveOneOutEvaluator, hit_rate_at_k, paired_t_test
from repro.models import (
    EmbeddingMatrix,
    LocationVocabulary,
    NextLocationRecommender,
    SkipGramModel,
)
from repro.privacy import (
    GaussianMechanism,
    MomentsAccountant,
    PrivacyLedger,
    calibrate_noise_multiplier,
    compute_epsilon,
    max_steps_for_budget,
)
from repro.attacks import MembershipInferenceAttack
from repro.experiments import ExperimentRunner, SweepSpec
from repro.models.serialization import (
    load_deployable_model,
    load_recommender,
    load_training_checkpoint,
    save_deployable_model,
    save_training_checkpoint,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # exceptions
    "ReproError",
    "ConfigError",
    "DataError",
    "ExecutorError",
    "PrivacyBudgetExceeded",
    "NotFittedError",
    "VocabularyError",
    # types
    "CheckIn",
    "Trajectory",
    # core
    "PLPConfig",
    "PrivateLocationPredictor",
    "UserLevelDPSGD",
    "NonPrivateTrainer",
    # engine
    "TrainingEngine",
    "BucketExecutor",
    "SerialExecutor",
    "ParallelExecutor",
    "StepObserver",
    # data
    "CheckinDataset",
    "SyntheticConfig",
    "TOKYO_BBOX",
    "generate_checkins",
    "load_foursquare_tsv",
    "paper_preprocessing",
    "holdout_users_split",
    "sessionize_dataset",
    # eval
    "LeaveOneOutEvaluator",
    "hit_rate_at_k",
    "paired_t_test",
    # models
    "SkipGramModel",
    "LocationVocabulary",
    "EmbeddingMatrix",
    "NextLocationRecommender",
    # privacy
    "GaussianMechanism",
    "MomentsAccountant",
    "PrivacyLedger",
    "compute_epsilon",
    "calibrate_noise_multiplier",
    "max_steps_for_budget",
    # extensions
    "MembershipInferenceAttack",
    "ExperimentRunner",
    "SweepSpec",
    "save_deployable_model",
    "load_deployable_model",
    "load_recommender",
    "save_training_checkpoint",
    "load_training_checkpoint",
]
