"""Command-line interface for the PLP reproduction.

Subcommands cover the full workflow::

    repro generate  --users 600 --locations 300 --out checkins.csv
    repro generate  --users 100000 --store --profile bulk --out corpus/
    repro train     --data checkins.csv --method plp --epsilon 2.0 --out model.npz
    repro train     --data corpus/ --executor sharded --workers 4 --out model.npz
    repro evaluate  --data checkins.csv --model model.npz
    repro recommend --model model.npz --recent 17,42,8 --top-k 10
    repro serve     model.npz --port 8000
    repro serve     city=a.npz beach=b.npz --model city --ann --mmap
    repro audit     --data checkins.csv --model model.npz
    repro lint      src --format text
    repro bench     --quick --out BENCH_plp.json

``repro train --synthetic`` skips the CSV and trains straight on a fresh
synthetic workload. All commands are deterministic under ``--seed``.

Training flags mirror :class:`~repro.core.config.PLPConfig` field names
(``--num-negatives`` for ``num_negatives``, and so on); a full or partial
config can also be given as JSON via ``--config`` (a file path or an
inline object), with explicit flags overriding the file through
``PLPConfig.with_overrides``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from repro._compat import register_deprecation, warn_deprecated
from repro.analysis.runner import add_lint_arguments, run_from_args
from repro.attacks import MembershipInferenceAttack
from repro.core.config import PLPConfig
from repro.core.dpsgd import UserLevelDPSGD
from repro.core.nonprivate import NonPrivateTrainer
from repro.core.trainer import PrivateLocationPredictor
from repro.data.checkins import CheckinDataset
from repro.data.io import load_checkins_csv, save_checkins_csv
from repro.data.preprocessing import paper_preprocessing
from repro.data.splitting import holdout_users_split, sessionize_dataset
from repro.data.store import CheckinStore, open_corpus
from repro.data.synthetic import (
    SyntheticConfig,
    generate_checkins,
    materialize_synthetic_store,
)
from repro.eval.evaluator import LeaveOneOutEvaluator
from repro.exceptions import ConfigError, ReproError
from repro.models.serialization import load_recommender, save_deployable_model

# Historical CLI defaults for the PLPConfig-backed train flags. Applied
# only when the flag is absent AND no --config file supplies the field, so
# `repro train` behaves exactly as before --config existed (note
# learning_rate 0.2, the CLI's long-standing default, vs the paper's 0.06
# in PLPConfig).
_TRAIN_FLAG_DEFAULTS = {
    "epsilon": 2.0,
    "delta": 2e-4,
    "grouping_factor": 4,
    "sampling_probability": 0.06,
    "noise_multiplier": 2.5,
    "clip_bound": 0.5,
    "learning_rate": 0.2,
    "embedding_dim": 50,
    "num_negatives": 16,
    "max_steps": None,
    "backend": "reference",
}


# Renamed/retired flags and their replacement spelling. Every entry is
# still accepted (wired through _DeprecatedAlias) but warns on use;
# warning mechanics and removal policy live in :mod:`repro._compat`.
_DEPRECATED_ALIASES = {
    "--negatives": "--num-negatives",
    "--metrics-jsonl": "--metrics-out PATH --metrics-format jsonl",
}

for _old, _new in _DEPRECATED_ALIASES.items():
    register_deprecation(f"repro train {_old}", _new)

register_deprecation(
    "repro serve --model PATH",
    "repro serve PATH (positional; NAME=PATH to host many) with "
    "--model NAME to pick the default",
)


class _DeprecatedAlias(argparse.Action):
    """Accepts a renamed flag, warning that the new spelling should be used."""

    def __init__(self, option_strings, dest, new_option=None, **kwargs):
        self.new_option = new_option
        super().__init__(option_strings, dest, **kwargs)

    def __call__(self, parser, namespace, values, option_string=None):
        replacement = self.new_option or _DEPRECATED_ALIASES.get(
            option_string or "", "the current flag"
        )
        warn_deprecated(option_string or "this flag", replacement, stacklevel=1)
        setattr(namespace, self.dest, values)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Differentially-private next-location prediction (EDBT 2020 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser("generate", help="generate synthetic check-ins")
    generate.add_argument("--users", type=int, default=600)
    generate.add_argument("--locations", type=int, default=300)
    generate.add_argument("--clusters", type=int, default=15)
    generate.add_argument("--mean-checkins", type=float, default=30.0)
    generate.add_argument("--seed", type=int, default=7)
    generate.add_argument(
        "--out", required=True, help="output CSV path (a directory with --store)"
    )
    generate.add_argument(
        "--store",
        action="store_true",
        help="write a sharded on-disk store (directory) instead of a CSV; "
        "the corpus is written raw (unpreprocessed), one memory-mapped "
        "shard per block of users — see docs/data.md",
    )
    generate.add_argument(
        "--profile",
        choices=("session", "bulk"),
        default="session",
        help="synthesis profile for --store: 'session' matches "
        "generate_checkins bit-for-bit, 'bulk' uses the vectorized "
        "block generator for very large corpora",
    )

    train = subparsers.add_parser("train", help="train a next-location model")
    source = train.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--data",
        help="input corpus: a check-in CSV or a sharded-store directory "
        "(from `repro generate --store`)",
    )
    source.add_argument(
        "--synthetic", action="store_true", help="train on a fresh synthetic workload"
    )
    train.add_argument(
        "--method", choices=("plp", "dpsgd", "nonprivate"), default="plp"
    )
    train.add_argument(
        "--config",
        default=None,
        help="PLPConfig as JSON: a file path or an inline object; "
        "explicit flags override it",
    )
    # PLPConfig-backed flags use SUPPRESS so 'explicitly given' is
    # distinguishable from 'defaulted' when merging with --config.
    suppress = argparse.SUPPRESS
    train.add_argument("--epsilon", type=float, default=suppress)
    train.add_argument("--delta", type=float, default=suppress)
    train.add_argument("--grouping-factor", type=int, default=suppress)
    train.add_argument("--sampling-probability", type=float, default=suppress)
    train.add_argument("--noise-multiplier", type=float, default=suppress)
    train.add_argument("--clip-bound", type=float, default=suppress)
    train.add_argument("--learning-rate", type=float, default=suppress)
    train.add_argument("--embedding-dim", type=int, default=suppress)
    train.add_argument(
        "--num-negatives", dest="num_negatives", type=int, default=suppress
    )
    train.add_argument(
        "--negatives",
        dest="num_negatives",
        type=int,
        default=suppress,
        action=_DeprecatedAlias,
        new_option="--num-negatives",
        help=argparse.SUPPRESS,
    )
    train.add_argument("--max-steps", type=int, default=suppress)
    train.add_argument(
        "--backend",
        choices=("reference", "fast", "numba"),
        default=suppress,
        help="compute kernel backend: reference (exact float64), fast "
        "(float32 fused kernels, same privacy accounting), numba "
        "(JIT-compiled; falls back to fast if numba is missing)",
    )
    train.add_argument("--epochs", type=int, default=5, help="non-private epochs")
    train.add_argument("--seed", type=int, default=7)
    train.add_argument(
        "--executor",
        choices=("serial", "parallel", "sharded"),
        default="serial",
        help="bucket execution backend: serial, parallel (process pool "
        "over materialized pairs), or sharded (persistent workers "
        "streaming pairs from the corpus store; the out-of-core "
        "backend). Results are bit-identical across all three.",
    )
    train.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for --executor parallel/sharded "
        "(default: all cores)",
    )
    train.add_argument(
        "--shard-dir",
        default=None,
        help="with --synthetic --executor sharded: materialize the "
        "synthetic corpus into this sharded-store directory (raw, "
        "unpreprocessed) and train out-of-core from it",
    )
    train.add_argument(
        "--metrics-jsonl",
        default=None,
        action=_DeprecatedAlias,
        help=argparse.SUPPRESS,
    )
    train.add_argument(
        "--trace-jsonl",
        default=None,
        help="stream engine spans to this JSON-lines trace file",
    )
    train.add_argument(
        "--metrics-out",
        default=None,
        help="write the metrics registry to this file after training",
    )
    train.add_argument(
        "--metrics-format",
        choices=("prometheus", "jsonl"),
        default="prometheus",
        help="format for --metrics-out (default: prometheus text)",
    )
    train.add_argument("--out", required=True, help="output model .npz path")

    evaluate = subparsers.add_parser(
        "evaluate", help="leave-one-out HR@k of a model on held-out users"
    )
    evaluate.add_argument("--data", required=True, help="check-in CSV")
    evaluate.add_argument("--model", required=True, help="model .npz")
    evaluate.add_argument("--holdout", type=int, default=50, help="users to hold out")
    evaluate.add_argument("--seed", type=int, default=7)

    recommend = subparsers.add_parser(
        "recommend", help="top-K next locations for recent check-ins"
    )
    recommend.add_argument("--model", required=True, help="model .npz")
    recommend.add_argument(
        "--recent", required=True, help="comma-separated recent POI ids"
    )
    recommend.add_argument("--top-k", type=int, default=10)

    serve = subparsers.add_parser(
        "serve",
        help="serve one or more models over HTTP (asyncio, POST /recommend)",
    )
    serve.add_argument(
        "artifacts",
        nargs="*",
        metavar="NAME=PATH",
        help="deployable .npz artifacts to host, as NAME=PATH pairs; "
        "a single bare PATH is hosted under the name 'default'",
    )
    serve.add_argument(
        "--model",
        default=None,
        help="default model for requests that name none, as NAME[@VERSION] "
        "(deprecated: a bare artifact path, kept for old invocations)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8000)
    topk_path = serve.add_mutually_exclusive_group()
    topk_path.add_argument(
        "--ann",
        action="store_true",
        help="answer top-k through the clustered sublinear index "
        "(recall knob: --nprobe; see docs/serving.md)",
    )
    topk_path.add_argument(
        "--exact",
        action="store_true",
        help="score every location per query (the default path)",
    )
    serve.add_argument(
        "--nprobe",
        type=int,
        default=8,
        help="clusters probed per ANN query (higher = better recall)",
    )
    serve.add_argument(
        "--clusters",
        type=int,
        default=None,
        help="ANN partition count (default: about sqrt(num_locations))",
    )
    serve.add_argument(
        "--max-queue",
        type=int,
        default=1024,
        help="bound on queued requests; beyond it the server sheds load "
        "with 503 + Retry-After",
    )
    serve.add_argument(
        "--mmap",
        action="store_true",
        help="memory-map artifact embeddings so concurrent serving "
        "processes share one read-only copy",
    )
    serve.add_argument(
        "--mode",
        choices=("fast", "exact"),
        default="fast",
        help="scoring kernel: float32 fast (default) or float64 exact",
    )
    serve.add_argument(
        "--exclude-input",
        action="store_true",
        help="drop the query's own locations from recommendations",
    )
    serve.add_argument(
        "--no-fallback",
        action="store_true",
        help="fail all-unknown queries instead of answering from the "
        "popularity prior",
    )
    serve.add_argument(
        "--metrics-format",
        choices=("prometheus", "json", "jsonl"),
        default="prometheus",
        help="default representation of GET /metrics (per-request "
        "override: ?format=)",
    )
    serve.add_argument(
        "--trace-jsonl",
        default=None,
        help="stream serving spans to this JSON-lines trace file",
    )
    serve.add_argument(
        "--include-counts",
        action="store_true",
        help="export per-POI recommendation counters (live-traffic "
        "telemetry, NOT covered by the DP guarantee)",
    )
    serve.add_argument("--max-batch", type=int, default=64)
    serve.add_argument(
        "--max-wait-ms",
        type=float,
        default=2.0,
        help="batching window: how long to hold a request for peers",
    )
    serve.add_argument(
        "--timeout", type=float, default=2.0, help="per-request deadline (s)"
    )

    audit = subparsers.add_parser(
        "audit", help="membership-inference audit of a released model"
    )
    audit.add_argument("--data", required=True, help="check-in CSV")
    audit.add_argument("--model", required=True, help="model .npz")
    audit.add_argument("--holdout", type=int, default=50)
    audit.add_argument("--seed", type=int, default=7)

    lint = subparsers.add_parser(
        "lint",
        help="dplint: check the DP/determinism invariants "
        "(docs/static-analysis.md)",
    )
    add_lint_arguments(lint)

    bench = subparsers.add_parser(
        "bench",
        help="end-to-end benchmark: train/evaluate/recommend with "
        "per-backend kernel timings; diffs against the committed "
        "BENCH_plp.json baseline",
    )
    from repro.bench import add_bench_arguments

    add_bench_arguments(bench)

    sweep = subparsers.add_parser(
        "sweep",
        help="run a declarative experiment grid in parallel with "
        "resumable state (docs/sweeps.md)",
    )
    sweep.add_argument(
        "spec",
        nargs="?",
        default=None,
        help="sweep spec JSON (omit with --figures)",
    )
    sweep.add_argument(
        "--out", required=True, help="output directory for manifest/outcomes/aggregate"
    )
    sweep.add_argument(
        "--workers", type=int, default=1, help="process-pool width (1 = in-process)"
    )
    sweep.add_argument(
        "--resume",
        action="store_true",
        help="continue a previous sweep in --out, skipping completed runs",
    )
    sweep.add_argument(
        "--subset", default=None, help="run only this named subset of the spec"
    )
    sweep.add_argument(
        "--halt-after",
        type=int,
        default=None,
        help="stop after this many newly executed runs (exit code 5; "
        "resume later with --resume)",
    )
    sweep.add_argument(
        "--figures",
        action="store_true",
        help="regenerate every paper figure as sweeps under --out",
    )
    sweep.add_argument(
        "--scale",
        choices=("smoke", "paper"),
        default="smoke",
        help="figure scale for --figures (default: smoke)",
    )
    sweep.add_argument("--fault-marker", default=None, help=argparse.SUPPRESS)
    sweep.add_argument(
        "--trace-jsonl",
        default=None,
        help="stream sweep spans to this JSON-lines trace file",
    )
    sweep.add_argument(
        "--metrics-out",
        default=None,
        help="write the metrics registry to this file after the sweep",
    )
    sweep.add_argument(
        "--metrics-format",
        choices=("prometheus", "jsonl"),
        default="prometheus",
        help="format for --metrics-out (default: prometheus text)",
    )

    return parser


def _cmd_generate(args: argparse.Namespace) -> int:
    config = SyntheticConfig(
        num_users=args.users,
        num_locations=args.locations,
        num_clusters=args.clusters,
        mean_checkins_per_user=args.mean_checkins,
    )
    if args.store:
        with materialize_synthetic_store(
            config, path=args.out, rng=args.seed, profile=args.profile
        ) as store:
            print(
                f"wrote {store.num_checkins} check-ins "
                f"({store.num_users} users) to sharded store {args.out}"
            )
            print(f"  {store.stats().as_dict()}")
        return 0
    checkins = paper_preprocessing(generate_checkins(config, rng=args.seed))
    count = save_checkins_csv(args.out, checkins)
    stats = CheckinDataset(checkins).stats()
    print(f"wrote {count} check-ins to {args.out}")
    print(f"  {stats.as_dict()}")
    return 0


def _load_dataset(args: argparse.Namespace) -> CheckinDataset:
    """The corpus as an in-memory dataset (evaluate/audit need full passes)."""
    if getattr(args, "synthetic", False):
        checkins = paper_preprocessing(generate_checkins(SyntheticConfig(), rng=args.seed))
        return CheckinDataset(checkins)
    with open_corpus(args.data) as corpus:
        return corpus.to_dataset()


def _resolve_train_corpus(args: argparse.Namespace) -> "CheckinDataset | CheckinStore":
    """The training corpus, honoring --synthetic / --data / --shard-dir.

    Raises:
        ConfigError: on flag combinations that cannot work (``--workers``
            without a multi-process executor, ``--shard-dir`` without
            ``--synthetic --executor sharded``).
    """
    if args.workers is not None and args.executor not in ("parallel", "sharded"):
        raise ConfigError(
            "--workers only applies to --executor parallel or sharded, "
            f"not {args.executor!r}"
        )
    if args.shard_dir is not None:
        if args.executor != "sharded":
            raise ConfigError(
                "--shard-dir requires --executor sharded "
                f"(got --executor {args.executor})"
            )
        if not args.synthetic:
            raise ConfigError(
                "--shard-dir materializes a fresh synthetic corpus; to train "
                "from an existing store, point --data at its directory"
            )
        return materialize_synthetic_store(
            SyntheticConfig(), path=args.shard_dir, rng=args.seed
        )
    if args.synthetic:
        checkins = paper_preprocessing(
            generate_checkins(SyntheticConfig(), rng=args.seed)
        )
        return CheckinDataset(checkins)
    return open_corpus(args.data)


def _load_config_json(source: str) -> dict:
    """Parse ``--config``: an inline JSON object or a path to one."""
    text = source
    if not source.lstrip().startswith("{"):
        path = Path(source)
        if not path.exists():
            raise ConfigError(f"config file not found: {source}")
        text = path.read_text(encoding="utf-8")
    try:
        values = json.loads(text)
    except json.JSONDecodeError as error:
        raise ConfigError(f"--config is not valid JSON: {error}") from error
    if not isinstance(values, dict):
        raise ConfigError("--config must hold a JSON object of PLPConfig fields")
    return values


def _resolve_train_config(args: argparse.Namespace) -> PLPConfig:
    """Merge --config JSON with explicit flags (flags win).

    Without ``--config``, the historical CLI defaults apply, so existing
    invocations train identically.
    """
    explicit = {
        name: getattr(args, name)
        for name in _TRAIN_FLAG_DEFAULTS
        if hasattr(args, name)
    }
    if args.config is not None:
        base = PLPConfig.from_dict(_load_config_json(args.config))
        return base.with_overrides(**explicit)
    return PLPConfig().with_overrides(**{**_TRAIN_FLAG_DEFAULTS, **explicit})


def _cmd_train(args: argparse.Namespace) -> int:
    corpus = _resolve_train_corpus(args)
    print(f"training on {corpus.num_users} users / {corpus.num_locations} POIs")

    observers = []
    if args.metrics_jsonl:
        from repro.core.engine import JsonlMetricsObserver

        observers.append(JsonlMetricsObserver(args.metrics_jsonl))
    observability = None
    if args.trace_jsonl or args.metrics_out:
        from repro.observability import with_observability

        observability = with_observability(
            trace_jsonl=args.trace_jsonl,
            metrics_path=args.metrics_out,
            metrics_format=args.metrics_format,
        )
    engine_opts = dict(
        executor=args.executor,
        workers=args.workers,
        observers=observers,
        observability=observability,
    )
    config = _resolve_train_config(args)

    try:
        if args.method == "nonprivate":
            trainer = NonPrivateTrainer(
                embedding_dim=config.embedding_dim,
                num_negatives=config.num_negatives,
                learning_rate=config.learning_rate,
                backend=config.backend,
                rng=args.seed,
                **engine_opts,
            )
            history = trainer.fit(corpus, epochs=args.epochs)
            privacy = {"mechanism": "none", "epsilon": "inf"}
        else:
            trainer_cls = (
                UserLevelDPSGD if args.method == "dpsgd" else PrivateLocationPredictor
            )
            trainer = trainer_cls(config, rng=args.seed, **engine_opts)
            history = trainer.fit(corpus)
            privacy = {
                "mechanism": args.method,
                "epsilon": history.final_epsilon,
                "delta": config.delta,
                "steps": len(history),
            }
            print(
                f"  {len(history)} steps ({history.stop_reason}); "
                f"epsilon spent = {history.final_epsilon:.3f}"
            )
            from repro.reporting import sparkline

            print(f"  loss {sparkline(history.losses())}")
    finally:
        if isinstance(corpus, CheckinStore):
            corpus.close()

    if getattr(trainer, "corpus_source", None) is not None:
        privacy["corpus"] = trainer.corpus_source

    save_deployable_model(
        args.out, trainer.embeddings(), trainer.vocabulary, privacy
    )
    print(f"saved deployable model to {args.out}")
    if observability is not None:
        observability.close()
        if args.metrics_out:
            print(f"wrote metrics ({args.metrics_format}) to {args.metrics_out}")
        if args.trace_jsonl:
            print(f"wrote trace to {args.trace_jsonl}")
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    dataset = _load_dataset(args)
    _, holdout = holdout_users_split(dataset, args.holdout, rng=args.seed)
    recommender = load_recommender(args.model)
    evaluator = LeaveOneOutEvaluator(sessionize_dataset(holdout), k_values=(5, 10, 20))
    result = evaluator.evaluate(recommender)
    print(result.summary())
    return 0


def _cmd_recommend(args: argparse.Namespace) -> int:
    recommender = load_recommender(args.model)
    recent = [int(token.strip()) for token in args.recent.split(",") if token.strip()]
    results = recommender.recommend(recent, top_k=args.top_k)
    print(f"recent check-ins: {recent}")
    for rank, (location, score) in enumerate(results, start=1):
        print(f"  {rank:2d}. POI {location} (score {score:.4f})")
    return 0


def _looks_like_artifact_path(value: str) -> bool:
    """Heuristic for the deprecated ``--model PATH`` spelling."""
    if "@" in value:
        return False
    return value.endswith(".npz") or "/" in value or Path(value).exists()


def _serve_config_from_args(args: argparse.Namespace) -> "ServingConfig":
    """Resolve the serve flags into a :class:`ServingConfig` value."""
    from repro.serving.api import ModelRef, ServingConfig

    artifacts: list[tuple[str, str]] = []
    for spec in args.artifacts:
        name, sep, path = spec.partition("=")
        if sep and name and path:
            artifacts.append((name, path))
        elif not sep and len(args.artifacts) == 1:
            artifacts.append(("default", spec))
        else:
            raise ConfigError(
                "artifacts must be NAME=PATH pairs (or a single bare "
                f"PATH), got {spec!r}"
            )

    default_model: str | None = None
    if args.model is not None:
        if not artifacts and _looks_like_artifact_path(args.model):
            warn_deprecated(
                "repro serve --model PATH",
                "repro serve PATH (positional; NAME=PATH to host many) "
                "with --model NAME to pick the default",
            )
            artifacts.append(("default", args.model))
        else:
            ref = ModelRef.parse(args.model)
            if ref.version not in (None, 1):
                raise ConfigError(
                    "--model can only pin @1: artifacts publish as "
                    f"version 1 at startup (got {args.model!r}); pin "
                    "later versions per request instead"
                )
            default_model = ref.name

    if not artifacts:
        raise ConfigError(
            "nothing to serve: pass artifacts as NAME=PATH positionals "
            "(or a single bare PATH)"
        )
    return ServingConfig(
        artifacts=tuple(artifacts),
        default_model=default_model or artifacts[0][0],
        mode=args.mode,
        ann=args.ann,
        nprobe=args.nprobe,
        num_clusters=args.clusters,
        max_batch=args.max_batch,
        max_wait_seconds=args.max_wait_ms / 1000.0,
        timeout_seconds=args.timeout,
        max_queue=args.max_queue,
        exclude_input=args.exclude_input,
        with_fallback=not args.no_fallback,
        mmap=args.mmap,
        host=args.host,
        port=args.port,
        metrics_format=args.metrics_format,
        include_counts=args.include_counts,
        trace_jsonl=args.trace_jsonl,
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serving.asgi import serve

    serve(_serve_config_from_args(args))
    return 0


def _cmd_audit(args: argparse.Namespace) -> int:
    dataset = _load_dataset(args)
    train, holdout = holdout_users_split(dataset, args.holdout, rng=args.seed)
    from repro.models.serialization import load_deployable_model

    embeddings, vocabulary, privacy = load_deployable_model(args.model)
    attack = MembershipInferenceAttack(embeddings, vocabulary=vocabulary)
    members = [[history.locations()] for history in train][: args.holdout]
    nonmembers = [[history.locations()] for history in holdout]
    result = attack.audit(members, nonmembers)
    print(f"model privacy metadata: {privacy}")
    print(result.summary())
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import run_from_args as run_bench_from_args

    return run_bench_from_args(args)


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.experiments import GridSpec, run_figures, run_sweep

    observability = None
    if args.trace_jsonl or args.metrics_out:
        from repro.observability import with_observability

        observability = with_observability(
            trace_jsonl=args.trace_jsonl,
            metrics_path=args.metrics_out,
            metrics_format=args.metrics_format,
        )
    try:
        if args.figures:
            if args.spec is not None:
                raise ConfigError("--figures takes no spec argument")
            reports = run_figures(
                args.out,
                scale=args.scale,
                workers=args.workers,
                resume=args.resume,
                observability=observability,
            )
        else:
            if args.spec is None:
                raise ConfigError("a sweep spec is required (or pass --figures)")
            spec = GridSpec.from_file(args.spec)
            if args.subset:
                spec = spec.subset(args.subset)
            reports = [
                run_sweep(
                    spec,
                    args.out,
                    workers=args.workers,
                    resume=args.resume,
                    halt_after=args.halt_after,
                    fault_marker=args.fault_marker,
                    observability=observability,
                )
            ]
    finally:
        if observability is not None:
            observability.close()
    for report in reports:
        print(report.summary())
        if report.table is not None:
            print(report.table.render())
        if report.aggregate_path is not None:
            print(f"wrote aggregate to {report.aggregate_path}")
    if any(report.halted for report in reports):
        return 5
    if any(report.failed for report in reports):
        return 6
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "train": _cmd_train,
    "evaluate": _cmd_evaluate,
    "recommend": _cmd_recommend,
    "serve": _cmd_serve,
    "audit": _cmd_audit,
    "lint": run_from_args,
    "bench": _cmd_bench,
    "sweep": _cmd_sweep,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
