"""Command-line interface for the PLP reproduction.

Subcommands cover the full workflow::

    repro generate  --users 600 --locations 300 --out checkins.csv
    repro train     --data checkins.csv --method plp --epsilon 2.0 --out model.npz
    repro evaluate  --data checkins.csv --model model.npz
    repro recommend --model model.npz --recent 17,42,8 --top-k 10
    repro audit     --data checkins.csv --model model.npz

``repro train --synthetic`` skips the CSV and trains straight on a fresh
synthetic workload. All commands are deterministic under ``--seed``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.attacks import MembershipInferenceAttack
from repro.core.config import PLPConfig
from repro.core.dpsgd import UserLevelDPSGD
from repro.core.nonprivate import NonPrivateTrainer
from repro.core.trainer import PrivateLocationPredictor
from repro.data.checkins import CheckinDataset
from repro.data.io import load_checkins_csv, save_checkins_csv
from repro.data.preprocessing import paper_preprocessing
from repro.data.splitting import holdout_users_split, sessionize_dataset
from repro.data.synthetic import SyntheticConfig, generate_checkins
from repro.eval.evaluator import LeaveOneOutEvaluator
from repro.exceptions import ReproError
from repro.models.serialization import load_recommender, save_deployable_model


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Differentially-private next-location prediction (EDBT 2020 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser("generate", help="generate synthetic check-ins")
    generate.add_argument("--users", type=int, default=600)
    generate.add_argument("--locations", type=int, default=300)
    generate.add_argument("--clusters", type=int, default=15)
    generate.add_argument("--mean-checkins", type=float, default=30.0)
    generate.add_argument("--seed", type=int, default=7)
    generate.add_argument("--out", required=True, help="output CSV path")

    train = subparsers.add_parser("train", help="train a next-location model")
    source = train.add_mutually_exclusive_group(required=True)
    source.add_argument("--data", help="input check-in CSV")
    source.add_argument(
        "--synthetic", action="store_true", help="train on a fresh synthetic workload"
    )
    train.add_argument(
        "--method", choices=("plp", "dpsgd", "nonprivate"), default="plp"
    )
    train.add_argument("--epsilon", type=float, default=2.0)
    train.add_argument("--delta", type=float, default=2e-4)
    train.add_argument("--grouping-factor", type=int, default=4)
    train.add_argument("--sampling-probability", type=float, default=0.06)
    train.add_argument("--noise-multiplier", type=float, default=2.5)
    train.add_argument("--clip-bound", type=float, default=0.5)
    train.add_argument("--learning-rate", type=float, default=0.2)
    train.add_argument("--embedding-dim", type=int, default=50)
    train.add_argument("--negatives", type=int, default=16)
    train.add_argument("--max-steps", type=int, default=None)
    train.add_argument("--epochs", type=int, default=5, help="non-private epochs")
    train.add_argument("--seed", type=int, default=7)
    train.add_argument(
        "--executor",
        choices=("serial", "parallel"),
        default="serial",
        help="bucket execution backend (results are identical either way)",
    )
    train.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for --executor parallel (default: all cores)",
    )
    train.add_argument(
        "--metrics-jsonl",
        default=None,
        help="stream per-step metrics to this JSON-lines file",
    )
    train.add_argument("--out", required=True, help="output model .npz path")

    evaluate = subparsers.add_parser(
        "evaluate", help="leave-one-out HR@k of a model on held-out users"
    )
    evaluate.add_argument("--data", required=True, help="check-in CSV")
    evaluate.add_argument("--model", required=True, help="model .npz")
    evaluate.add_argument("--holdout", type=int, default=50, help="users to hold out")
    evaluate.add_argument("--seed", type=int, default=7)

    recommend = subparsers.add_parser(
        "recommend", help="top-K next locations for recent check-ins"
    )
    recommend.add_argument("--model", required=True, help="model .npz")
    recommend.add_argument(
        "--recent", required=True, help="comma-separated recent POI ids"
    )
    recommend.add_argument("--top-k", type=int, default=10)

    audit = subparsers.add_parser(
        "audit", help="membership-inference audit of a released model"
    )
    audit.add_argument("--data", required=True, help="check-in CSV")
    audit.add_argument("--model", required=True, help="model .npz")
    audit.add_argument("--holdout", type=int, default=50)
    audit.add_argument("--seed", type=int, default=7)

    return parser


def _cmd_generate(args: argparse.Namespace) -> int:
    config = SyntheticConfig(
        num_users=args.users,
        num_locations=args.locations,
        num_clusters=args.clusters,
        mean_checkins_per_user=args.mean_checkins,
    )
    checkins = paper_preprocessing(generate_checkins(config, rng=args.seed))
    count = save_checkins_csv(args.out, checkins)
    stats = CheckinDataset(checkins).stats()
    print(f"wrote {count} check-ins to {args.out}")
    print(f"  {stats.as_dict()}")
    return 0


def _load_dataset(args: argparse.Namespace) -> CheckinDataset:
    if getattr(args, "synthetic", False):
        checkins = paper_preprocessing(generate_checkins(SyntheticConfig(), rng=args.seed))
    else:
        checkins = load_checkins_csv(args.data)
    return CheckinDataset(checkins)


def _cmd_train(args: argparse.Namespace) -> int:
    dataset = _load_dataset(args)
    print(f"training on {dataset.num_users} users / {dataset.num_locations} POIs")

    observers = []
    if args.metrics_jsonl:
        from repro.core.engine import JsonlMetricsObserver

        observers.append(JsonlMetricsObserver(args.metrics_jsonl))
    engine_opts = dict(
        executor=args.executor, workers=args.workers, observers=observers
    )

    if args.method == "nonprivate":
        trainer = NonPrivateTrainer(
            embedding_dim=args.embedding_dim,
            num_negatives=args.negatives,
            learning_rate=args.learning_rate,
            rng=args.seed,
            **engine_opts,
        )
        history = trainer.fit(dataset, epochs=args.epochs)
        privacy = {"mechanism": "none", "epsilon": "inf"}
    else:
        config = PLPConfig(
            epsilon=args.epsilon,
            delta=args.delta,
            grouping_factor=args.grouping_factor,
            sampling_probability=args.sampling_probability,
            noise_multiplier=args.noise_multiplier,
            clip_bound=args.clip_bound,
            learning_rate=args.learning_rate,
            embedding_dim=args.embedding_dim,
            num_negatives=args.negatives,
            max_steps=args.max_steps,
        )
        trainer_cls = UserLevelDPSGD if args.method == "dpsgd" else PrivateLocationPredictor
        trainer = trainer_cls(config, rng=args.seed, **engine_opts)
        history = trainer.fit(dataset)
        privacy = {
            "mechanism": args.method,
            "epsilon": history.final_epsilon,
            "delta": args.delta,
            "steps": len(history),
        }
        print(
            f"  {len(history)} steps ({history.stop_reason}); "
            f"epsilon spent = {history.final_epsilon:.3f}"
        )
        from repro.reporting import sparkline

        print(f"  loss {sparkline(history.losses())}")

    save_deployable_model(
        args.out, trainer.embeddings(), trainer.vocabulary, privacy
    )
    print(f"saved deployable model to {args.out}")
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    dataset = _load_dataset(args)
    _, holdout = holdout_users_split(dataset, args.holdout, rng=args.seed)
    recommender = load_recommender(args.model)
    evaluator = LeaveOneOutEvaluator(sessionize_dataset(holdout), k_values=(5, 10, 20))
    result = evaluator.evaluate(recommender)
    print(result.summary())
    return 0


def _cmd_recommend(args: argparse.Namespace) -> int:
    recommender = load_recommender(args.model)
    recent = [int(token.strip()) for token in args.recent.split(",") if token.strip()]
    results = recommender.recommend(recent, top_k=args.top_k)
    print(f"recent check-ins: {recent}")
    for rank, (location, score) in enumerate(results, start=1):
        print(f"  {rank:2d}. POI {location} (score {score:.4f})")
    return 0


def _cmd_audit(args: argparse.Namespace) -> int:
    dataset = _load_dataset(args)
    train, holdout = holdout_users_split(dataset, args.holdout, rng=args.seed)
    from repro.models.serialization import load_deployable_model

    embeddings, vocabulary, privacy = load_deployable_model(args.model)
    attack = MembershipInferenceAttack(embeddings, vocabulary=vocabulary)
    members = [[history.locations()] for history in train][: args.holdout]
    nonmembers = [[history.locations()] for history in holdout]
    result = attack.audit(members, nonmembers)
    print(f"model privacy metadata: {privacy}")
    print(result.summary())
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "train": _cmd_train,
    "evaluate": _cmd_evaluate,
    "recommend": _cmd_recommend,
    "audit": _cmd_audit,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
