"""The versioned serving wire API: typed request/response/config objects.

Pins the v1 wire contract from ``docs/serving.md``: v-less bodies decode
as v1, unknown versions and unknown fields are rejected, ``top_k`` is
strictly integral, and responses keep the legacy ``model_version`` /
``fallback`` spellings alongside the v1 fields.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigError
from repro.serving.api import (
    SERVED_BY,
    WIRE_VERSION,
    ModelRef,
    RecommendRequest,
    RecommendResponse,
    ServingConfig,
    validate_top_k,
)


class TestValidateTopK:
    def test_accepts_plain_ints(self):
        assert validate_top_k(1) == 1
        assert validate_top_k(100) == 100

    def test_accepts_numpy_integers_via_index_protocol(self):
        value = validate_top_k(np.int64(7))
        assert value == 7
        assert type(value) is int

    @pytest.mark.parametrize("bad", [True, False])
    def test_rejects_bools_explicitly(self, bad):
        # bool is an int subclass: int(True) == 1 used to slip through.
        with pytest.raises(ConfigError, match="bool"):
            validate_top_k(bad)

    @pytest.mark.parametrize("bad", ["10", 3.0, 3.5, None, [3], {}])
    def test_rejects_non_integral_types_naming_the_type(self, bad):
        with pytest.raises(ConfigError, match=type(bad).__name__):
            validate_top_k(bad)

    @pytest.mark.parametrize("bad", [0, -1, -100])
    def test_rejects_non_positive(self, bad):
        with pytest.raises(ConfigError, match=">= 1"):
            validate_top_k(bad)

    def test_limit_is_inclusive(self):
        assert validate_top_k(100, limit=100) == 100
        with pytest.raises(ConfigError, match=r"\[1, 100\]"):
            validate_top_k(101, limit=100)


class TestModelRef:
    def test_defaults_to_unpinned_default_model(self):
        ref = ModelRef()
        assert (ref.name, ref.version) == ("default", None)
        assert str(ref) == "default"

    def test_parse_name_and_pinned_version(self):
        assert ModelRef.parse("city") == ModelRef("city")
        assert ModelRef.parse("city@3") == ModelRef("city", 3)
        assert str(ModelRef.parse("city@3")) == "city@3"

    def test_parse_none_is_default_and_refs_pass_through(self):
        assert ModelRef.parse(None) == ModelRef()
        pinned = ModelRef("beach", 2)
        assert ModelRef.parse(pinned) is pinned

    @pytest.mark.parametrize("bad", ["city@", "city@x", "city@-1", "city@1.5"])
    def test_parse_rejects_malformed_versions(self, bad):
        with pytest.raises(ConfigError, match="version"):
            ModelRef.parse(bad)

    def test_name_must_not_embed_at_sign(self):
        with pytest.raises(ConfigError, match="ModelRef.parse"):
            ModelRef("city@3")

    @pytest.mark.parametrize("bad", ["", None, 7])
    def test_name_must_be_nonempty_string(self, bad):
        with pytest.raises(ConfigError):
            ModelRef(bad)

    @pytest.mark.parametrize("bad", [0, -1, True, 1.0])
    def test_version_must_be_positive_integer(self, bad):
        with pytest.raises(ConfigError):
            ModelRef("city", bad)

    def test_parse_rejects_non_strings(self):
        with pytest.raises(ConfigError, match="name"):
            ModelRef.parse(7)


class TestRecommendRequest:
    def test_versionless_body_decodes_as_v1(self):
        request = RecommendRequest.from_dict({"recent": ["a", "b"]})
        assert request.v == WIRE_VERSION
        assert request.recent == ("a", "b")
        assert request.top_k == 10
        assert request.model == ModelRef()

    def test_explicit_v1_with_model_spec(self):
        request = RecommendRequest.from_dict(
            {"v": 1, "recent": ["a"], "top_k": 3, "model": "city@2"}
        )
        assert request.top_k == 3
        assert request.model == ModelRef("city", 2)

    @pytest.mark.parametrize("bad", [0, 2, 99, "1", True])
    def test_unknown_wire_versions_are_rejected(self, bad):
        with pytest.raises(ConfigError, match='"v"|version'):
            RecommendRequest.from_dict({"v": bad, "recent": []})

    def test_unknown_fields_are_rejected(self):
        with pytest.raises(ConfigError, match="recnt"):
            RecommendRequest.from_dict({"recnt": ["a"]})

    def test_missing_recent_is_rejected(self):
        with pytest.raises(ConfigError, match="recent"):
            RecommendRequest.from_dict({"top_k": 3})

    @pytest.mark.parametrize("bad", ["poi-0", b"poi-0", 7, None])
    def test_recent_must_be_a_sequence(self, bad):
        with pytest.raises(ConfigError, match="recent"):
            RecommendRequest.from_dict({"recent": bad})

    def test_top_k_strictness_applies_on_the_wire(self):
        with pytest.raises(ConfigError, match="bool"):
            RecommendRequest.from_dict({"recent": ["a"], "top_k": True})

    def test_non_mapping_body_rejected(self):
        with pytest.raises(ConfigError, match="object"):
            RecommendRequest.from_dict(["recent"])

    def test_as_dict_round_trips_and_carries_v(self):
        request = RecommendRequest(recent=("a",), top_k=4, model=ModelRef("m", 2))
        wire = request.as_dict()
        assert wire["v"] == WIRE_VERSION
        assert wire["model"] == "m@2"
        assert RecommendRequest.from_dict(wire) == request


class TestRecommendResponse:
    def test_served_by_is_validated(self):
        for path in SERVED_BY:
            assert RecommendResponse(served_by=path).served_by == path
        with pytest.raises(ConfigError, match="served_by"):
            RecommendResponse(served_by="oracle")

    def test_fallback_property_tracks_served_by(self):
        assert RecommendResponse(served_by="popularity-prior").fallback is True
        assert RecommendResponse(served_by="ann").fallback is False

    def test_as_dict_keeps_legacy_spellings(self):
        response = RecommendResponse(
            recommendations=(("a", 0.5),), model="city", version=3, served_by="ann"
        )
        wire = response.as_dict()
        assert wire["v"] == WIRE_VERSION
        assert wire["model"] == "city"
        assert wire["version"] == 3
        assert wire["served_by"] == "ann"
        # Pre-redesign consumers keep decoding responses unchanged.
        assert wire["model_version"] == 3
        assert wire["fallback"] is False

    def test_from_dict_round_trips(self):
        response = RecommendResponse(
            recommendations=(("a", 0.5), ("b", 0.25)),
            model="city",
            version=3,
            served_by="popularity-prior",
        )
        assert RecommendResponse.from_dict(response.as_dict()) == response

    def test_legacy_body_infers_served_by_from_fallback(self):
        legacy = {
            "recommendations": [["a", 0.5]],
            "model_version": 2,
            "fallback": True,
        }
        response = RecommendResponse.from_dict(legacy)
        assert response.v == WIRE_VERSION
        assert response.model == "default"
        assert response.version == 2
        assert response.served_by == "popularity-prior"
        legacy["fallback"] = False
        assert RecommendResponse.from_dict(legacy).served_by == "exact"

    def test_unknown_wire_version_rejected(self):
        with pytest.raises(ConfigError, match="version"):
            RecommendResponse.from_dict({"v": 2, "recommendations": []})


class TestServingConfig:
    def test_defaults_validate(self):
        config = ServingConfig()
        assert config.v == WIRE_VERSION
        assert config.artifacts == ()
        assert config.default_model == "default"

    def test_artifacts_accept_mapping_and_pairs(self):
        from_pairs = ServingConfig(
            artifacts=(("city", "a.npz"), ("beach", "b.npz")), default_model="city"
        )
        from_mapping = ServingConfig(
            artifacts={"city": "a.npz", "beach": "b.npz"}, default_model="city"
        )
        assert from_pairs.artifacts == from_mapping.artifacts

    def test_bare_path_artifact_entries_are_rejected(self):
        with pytest.raises(ConfigError, match="bare path"):
            ServingConfig(artifacts=["a.npz"])

    def test_duplicate_artifact_names_are_rejected(self):
        with pytest.raises(ConfigError, match="duplicate"):
            ServingConfig(artifacts=(("city", "a.npz"), ("city", "b.npz")))

    def test_default_model_must_be_hosted(self):
        with pytest.raises(ConfigError, match="default_model"):
            ServingConfig(artifacts=(("city", "a.npz"),), default_model="beach")

    def test_artifact_names_must_not_embed_versions(self):
        with pytest.raises(ConfigError, match="'@'"):
            ServingConfig(artifacts=(("city@2", "a.npz"),))

    @pytest.mark.parametrize(
        "field_name,bad",
        [
            ("nprobe", 0),
            ("nprobe", True),
            ("max_batch", 0),
            ("max_queue", 0),
            ("max_queue", True),
            ("top_k_limit", 0),
            ("num_clusters", 0),
            ("num_clusters", True),
        ],
    )
    def test_integer_knobs_reject_bools_and_non_positive(self, field_name, bad):
        with pytest.raises(ConfigError, match=field_name):
            ServingConfig(**{field_name: bad})

    def test_mode_and_metrics_format_are_validated(self):
        with pytest.raises(ConfigError, match="mode"):
            ServingConfig(mode="approximate")
        with pytest.raises(ConfigError, match="metrics_format"):
            ServingConfig(metrics_format="xml")

    def test_timing_knobs_are_validated(self):
        with pytest.raises(ConfigError, match="max_wait_seconds"):
            ServingConfig(max_wait_seconds=-0.001)
        with pytest.raises(ConfigError, match="timeout_seconds"):
            ServingConfig(timeout_seconds=0.0)

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ConfigError, match="max_qeue"):
            ServingConfig.from_dict({"max_qeue": 4})

    def test_from_dict_versionless_is_v1_and_round_trips(self):
        config = ServingConfig(
            artifacts={"city": "a.npz", "beach": "b.npz"},
            default_model="beach",
            ann=True,
            nprobe=4,
            max_queue=16,
        )
        wire = config.as_dict()
        assert wire["artifacts"] == {"city": "a.npz", "beach": "b.npz"}
        assert ServingConfig.from_dict(wire) == config
        versionless = dict(wire)
        del versionless["v"]
        assert ServingConfig.from_dict(versionless) == config

    def test_with_artifact_appends_without_mutating(self):
        base = ServingConfig(artifacts=(("city", "a.npz"),), default_model="city")
        grown = base.with_artifact("beach", "b.npz")
        assert base.artifacts == (("city", "a.npz"),)
        assert grown.artifacts == (("city", "a.npz"), ("beach", "b.npz"))
