"""The asyncio serving front end: wire v1 over HTTP, backpressure, shedding.

The acceptance-critical test is :class:`TestLoadShedding`: saturating a
tiny bounded queue must produce explicit 503 + ``Retry-After`` responses
with *zero* silent drops — every request is answered and accounted.
"""

from __future__ import annotations

import http.client
import json
import threading

import pytest

from repro.serving.api import ServingConfig
from repro.serving.asgi import BackgroundServer
from repro.serving.service import RecommendService


@pytest.fixture(scope="module")
def server(artifact_path):
    service = RecommendService.from_artifact(artifact_path, mode="exact")
    with BackgroundServer(service) as background:
        yield background
    service.close()


def _request(port, method, path, payload=None, timeout=10):
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        return _on_connection(connection, method, path, payload)
    finally:
        connection.close()


def _on_connection(connection, method, path, payload=None):
    body = None if payload is None else json.dumps(payload).encode("utf-8")
    headers = {"Content-Type": "application/json"} if body else {}
    connection.request(method, path, body=body, headers=headers)
    response = connection.getresponse()
    raw = response.read()
    decoded = json.loads(raw) if raw else None
    return response.status, dict(response.getheaders()), decoded


class TestWireV1OverHttp:
    def test_healthz(self, server):
        status, _, payload = _request(server.port, "GET", "/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["num_locations"] == 40
        assert payload["models"]["default"]["version"] >= 1

    def test_recommend_carries_model_version_and_served_by(self, server):
        status, _, payload = _request(
            server.port,
            "POST",
            "/recommend",
            {"recent": ["poi-0", "poi-4"], "top_k": 3},
        )
        assert status == 200
        assert payload["v"] == 1
        assert payload["model"] == "default"
        assert payload["version"] >= 1
        assert payload["served_by"] == "exact"
        assert len(payload["recommendations"]) == 3
        # Legacy spellings stay on the wire for pre-redesign clients.
        assert payload["model_version"] == payload["version"]
        assert payload["fallback"] is False

    def test_fallback_is_served_by_popularity_prior(self, server):
        status, _, payload = _request(
            server.port, "POST", "/recommend", {"recent": ["never-seen"]}
        )
        assert status == 200
        assert payload["served_by"] == "popularity-prior"
        assert payload["fallback"] is True
        assert payload["recommendations"][0][0] == "poi-0"

    def test_explicit_default_model_and_pinned_version(self, server):
        for spec in ("default", "default@1"):
            status, _, payload = _request(
                server.port, "POST", "/recommend", {"recent": ["poi-1"], "model": spec}
            )
            assert status == 200
            assert payload["model"] == "default"

    def test_unknown_model_is_503_not_silent(self, server):
        status, _, payload = _request(
            server.port, "POST", "/recommend", {"recent": ["poi-1"], "model": "nope"}
        )
        assert status == 503
        assert "nope" in payload["error"]

    @pytest.mark.parametrize(
        "body",
        [
            {},
            {"recent": "poi-0"},
            {"recent": ["poi-0"], "top_k": True},
            {"recent": ["poi-0"], "top_k": 0},
            {"recent": ["poi-0"], "unknown_field": 1},
            {"v": 7, "recent": ["poi-0"]},
        ],
    )
    def test_malformed_requests_are_400(self, server, body):
        status, _, payload = _request(server.port, "POST", "/recommend", body)
        assert status == 400
        assert "error" in payload

    def test_invalid_json_body_is_400(self, server):
        connection = http.client.HTTPConnection("127.0.0.1", server.port, timeout=10)
        try:
            connection.request(
                "POST",
                "/recommend",
                body=b"{not json",
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            payload = json.loads(response.read())
            assert response.status == 400
            assert "JSON" in payload["error"]
        finally:
            connection.close()

    def test_unknown_path_is_404_and_bad_method_is_405(self, server):
        status, _, _ = _request(server.port, "GET", "/nope")
        assert status == 404
        status, _, _ = _request(server.port, "PUT", "/recommend", {"recent": []})
        assert status == 405

    def test_reload_bumps_version(self, server):
        _, _, before = _request(server.port, "GET", "/healthz")
        status, _, after = _request(server.port, "POST", "/reload", {})
        assert status == 200
        assert after["model_version"] == before["model_version"] + 1

    def test_metrics_reflect_traffic(self, server):
        _request(server.port, "POST", "/recommend", {"recent": ["poi-2"]})
        status, headers, payload = _request(
            server.port, "GET", "/metrics?format=json"
        )
        assert status == 200
        assert payload["requests"]["ok"] >= 1
        assert payload["model_requests"]["default"]["ok"] >= 1

    def test_keep_alive_serves_many_requests_per_connection(self, server):
        connection = http.client.HTTPConnection("127.0.0.1", server.port, timeout=10)
        try:
            for index in range(3):
                status, _, payload = _on_connection(
                    connection,
                    "POST",
                    "/recommend",
                    {"recent": [f"poi-{index}"], "top_k": 2},
                )
                assert status == 200
                assert len(payload["recommendations"]) == 2
        finally:
            connection.close()


class TestMultiModelServing:
    @pytest.fixture(scope="class")
    def multi_server(self, artifact_path, countless_artifact_path):
        config = ServingConfig(
            artifacts=(
                ("city", str(artifact_path)),
                ("beach", str(countless_artifact_path)),
            ),
            default_model="city",
            mode="exact",
        )
        service = RecommendService.from_config(config)
        with BackgroundServer(service) as background:
            yield background
        service.close()

    def test_request_routes_to_the_named_model(self, multi_server):
        for name in ("city", "beach"):
            status, _, payload = _request(
                multi_server.port,
                "POST",
                "/recommend",
                {"recent": ["poi-1"], "model": name},
            )
            assert status == 200
            assert payload["model"] == name

    def test_default_model_answers_unnamed_requests(self, multi_server):
        status, _, payload = _request(
            multi_server.port, "POST", "/recommend", {"recent": ["poi-1"]}
        )
        assert status == 200
        assert payload["model"] == "city"

    def test_stale_version_pin_is_rejected_after_reload(self, multi_server):
        status, _, _ = _request(
            multi_server.port, "POST", "/reload", {"model": "beach"}
        )
        assert status == 200
        status, _, payload = _request(
            multi_server.port,
            "POST",
            "/recommend",
            {"recent": ["poi-1"], "model": "beach@1"},
        )
        assert status == 503
        assert "version" in payload["error"]
        # The unpinned spelling keeps serving the new snapshot.
        status, _, payload = _request(
            multi_server.port, "POST", "/recommend", {"recent": ["poi-1"], "model": "beach"}
        )
        assert status == 200
        assert payload["version"] == 2


class TestLoadShedding:
    def test_saturation_sheds_with_retry_after_and_zero_silent_drops(
        self, artifact_path
    ):
        # A deliberately tiny pipe: queue of 2, slow batch window — a
        # burst of 24 concurrent requests must overflow it.
        service = RecommendService.from_artifact(
            artifact_path,
            mode="exact",
            max_batch=2,
            max_wait_seconds=0.1,
            timeout_seconds=10.0,
            max_queue=2,
        )
        num_requests = 24
        results = [None] * num_requests
        errors = []
        with BackgroundServer(service, request_timeout=30.0) as background:
            barrier = threading.Barrier(num_requests)

            def worker(index):
                try:
                    barrier.wait(timeout=10)
                    results[index] = _request(
                        background.port,
                        "POST",
                        "/recommend",
                        {"recent": [f"poi-{index % 40}"], "top_k": 5},
                        timeout=30,
                    )
                except Exception as error:  # pragma: no cover - diagnostic
                    errors.append(error)

            threads = [
                threading.Thread(target=worker, args=(index,))
                for index in range(num_requests)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            metrics = service.metrics()
        service.close()

        # Zero silent drops: every request produced an HTTP response.
        assert not errors
        assert all(result is not None for result in results)

        ok = [r for r in results if r[0] == 200]
        shed = [
            r
            for r in results
            if r[0] == 503 and "Retry-After" in r[1]
        ]
        other = [r for r in results if r not in ok and r not in shed]
        assert len(ok) + len(shed) == num_requests, f"unexpected: {other}"
        # The queue bound actually bit: explicit 503s, not hidden latency.
        assert shed, "burst never overflowed the max_queue=2 pipe"
        for _, headers, payload in shed:
            assert float(headers["Retry-After"]) > 0
            assert "error" in payload
        for _, _, payload in ok:
            assert len(payload["recommendations"]) == 5
        # ... and the shed path is accounted, not dropped, in metrics.
        assert metrics["requests"].get("shed", 0) == len(shed)
        assert metrics["requests"].get("ok", 0) >= len(ok)
