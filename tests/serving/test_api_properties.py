"""Property tests for the serving wire API (v1).

The wire boundary's contract is: *any* JSON-shaped junk thrown at a
decoder either produces a valid wire object or raises
:class:`~repro.exceptions.ConfigError` — never a bare ``TypeError`` /
``ValueError`` / ``KeyError`` leaking out of the guts. Hypothesis
generates the junk; the tests assert the typed-error contract and the
encode/decode round trips.

Requires the optional ``hypothesis`` dependency; skipped when absent.
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.exceptions import ConfigError  # noqa: E402
from repro.serving.api import (  # noqa: E402
    WIRE_VERSION,
    ModelRef,
    RecommendRequest,
    RecommendResponse,
    ServingConfig,
    validate_top_k,
)

# JSON-shaped junk: anything a json.loads() could hand the decoders.
json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(10**12), max_value=10**12),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=20),
)
json_values = st.recursive(
    json_scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=10), children, max_size=4),
    ),
    max_leaves=10,
)
json_objects = st.dictionaries(st.text(max_size=12), json_values, max_size=6)

REQUEST_FIELDS = st.sampled_from(["recent", "top_k", "model", "v"])
RESPONSE_FIELDS = st.sampled_from(
    ["recommendations", "model", "version", "model_version", "served_by", "fallback", "v"]
)
CONFIG_FIELDS = st.sampled_from(
    ["artifacts", "mode", "nprobe", "max_batch", "max_wait_seconds",
     "timeout_seconds", "max_queue", "top_k_limit", "metrics_format", "v"]
)


class TestJunkOnlyRaisesTypedErrors:
    @given(payload=st.one_of(json_values, json_objects))
    @settings(max_examples=200)
    def test_request_decoder(self, payload):
        try:
            decoded = RecommendRequest.from_dict(payload)
        except ConfigError:
            return
        assert isinstance(decoded, RecommendRequest)
        assert decoded.v == WIRE_VERSION

    @given(payload=st.dictionaries(REQUEST_FIELDS, json_values, max_size=4))
    @settings(max_examples=200)
    def test_request_decoder_known_fields(self, payload):
        try:
            decoded = RecommendRequest.from_dict(payload)
        except ConfigError:
            return
        assert decoded.top_k >= 1

    @given(payload=st.one_of(json_values, json_objects))
    @settings(max_examples=200)
    def test_response_decoder(self, payload):
        try:
            decoded = RecommendResponse.from_dict(payload)
        except ConfigError:
            return
        assert isinstance(decoded, RecommendResponse)

    @given(payload=st.dictionaries(RESPONSE_FIELDS, json_values, max_size=4))
    @settings(max_examples=200)
    def test_response_decoder_known_fields(self, payload):
        try:
            decoded = RecommendResponse.from_dict(payload)
        except ConfigError:
            return
        assert decoded.served_by in ("exact", "ann", "popularity-prior")

    @given(payload=st.one_of(json_values, st.dictionaries(CONFIG_FIELDS, json_values, max_size=4)))
    @settings(max_examples=200)
    def test_config_decoder(self, payload):
        try:
            decoded = ServingConfig.from_dict(payload)
        except ConfigError:
            return
        assert isinstance(decoded, ServingConfig)

    @given(spec=json_values)
    @settings(max_examples=200)
    def test_model_ref_parse(self, spec):
        try:
            ref = ModelRef.parse(spec)
        except ConfigError:
            return
        assert isinstance(ref, ModelRef)
        assert "@" not in ref.name

    @given(top_k=json_values)
    @settings(max_examples=200)
    def test_validate_top_k(self, top_k):
        try:
            value = validate_top_k(top_k, limit=100)
        except ConfigError:
            return
        assert isinstance(value, int)
        assert not isinstance(value, bool)
        assert 1 <= value <= 100


class TestRoundTrips:
    @given(
        recent=st.lists(st.integers(min_value=0, max_value=10**6), max_size=8),
        top_k=st.integers(min_value=1, max_value=1000),
        name=st.text(
            alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd")),
            min_size=1,
            max_size=10,
        ),
        version=st.one_of(st.none(), st.integers(min_value=1, max_value=10**6)),
    )
    @settings(max_examples=100)
    def test_request_round_trip(self, recent, top_k, name, version):
        request = RecommendRequest(
            recent=tuple(recent), top_k=top_k, model=ModelRef(name, version)
        )
        decoded = RecommendRequest.from_dict(request.as_dict())
        assert decoded == request

    @given(
        pairs=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=10**6),
                st.floats(
                    allow_nan=False, allow_infinity=False, min_value=-1e6, max_value=1e6
                ),
            ),
            max_size=8,
        ),
        version=st.integers(min_value=0, max_value=10**6),
        served_by=st.sampled_from(["exact", "ann", "popularity-prior"]),
    )
    @settings(max_examples=100)
    def test_response_round_trip(self, pairs, version, served_by):
        response = RecommendResponse(
            recommendations=tuple(pairs),
            model="m",
            version=version,
            served_by=served_by,
        )
        decoded = RecommendResponse.from_dict(response.as_dict())
        assert decoded == response
        # The legacy alias always mirrors served_by.
        assert response.as_dict()["fallback"] == (served_by == "popularity-prior")

    @given(version=st.integers().filter(lambda v: v != WIRE_VERSION))
    @settings(max_examples=50)
    def test_unknown_wire_version_always_rejected(self, version):
        with pytest.raises(ConfigError, match="wire version"):
            RecommendRequest.from_dict({"v": version, "recent": []})
        with pytest.raises(ConfigError, match="wire version"):
            RecommendResponse.from_dict({"v": version})

    @given(name=st.text(max_size=10), version=st.integers(min_value=1, max_value=10**6))
    @settings(max_examples=100)
    def test_model_ref_str_parse_round_trip(self, name, version):
        try:
            ref = ModelRef(name=name, version=version)
        except ConfigError:
            return  # empty or '@'-bearing names are invalid by contract
        assert ModelRef.parse(str(ref)) == ref
