"""Shared fixtures for the serving tests: small saved artifacts."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models.embeddings import EmbeddingMatrix
from repro.models.serialization import save_deployable_model
from repro.models.vocabulary import LocationVocabulary

NUM_LOCATIONS = 40
EMBEDDING_DIM = 8
PRIVACY = {"epsilon": 2.0, "delta": 2e-4, "mechanism": "PLP"}


def _build_model() -> tuple[EmbeddingMatrix, LocationVocabulary]:
    rng = np.random.default_rng(31)
    embeddings = EmbeddingMatrix(rng.normal(size=(NUM_LOCATIONS, EMBEDDING_DIM)))
    vocabulary = LocationVocabulary.from_locations(
        [f"poi-{i}" for i in range(NUM_LOCATIONS)],
        counts=[NUM_LOCATIONS - i for i in range(NUM_LOCATIONS)],
    )
    return embeddings, vocabulary


@pytest.fixture(scope="session")
def artifact_path(tmp_path_factory) -> str:
    """A deployable artifact saved WITH counts (popularity prior restores)."""
    embeddings, vocabulary = _build_model()
    path = tmp_path_factory.mktemp("artifacts") / "model.npz"
    save_deployable_model(
        path, embeddings, vocabulary, privacy_metadata=PRIVACY, include_counts=True
    )
    return str(path)


@pytest.fixture(scope="session")
def countless_artifact_path(tmp_path_factory) -> str:
    """The same model saved WITHOUT counts (default; uniform fallback)."""
    embeddings, vocabulary = _build_model()
    path = tmp_path_factory.mktemp("artifacts") / "model-nocounts.npz"
    save_deployable_model(path, embeddings, vocabulary, privacy_metadata=PRIVACY)
    return str(path)
