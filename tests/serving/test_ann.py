"""ClusteredIndex: the sublinear top-k path and its recall contract.

The load-bearing assertion here is the recall property test: with the
default ``nprobe``, recall@10 against the exact kernel is >= 0.95 across
vocabulary sizes (the same contract ``BENCH_plp.json`` measures). The
rest pins determinism, the ``nprobe`` degeneration to an exact scan, and
the partition invariants.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigError
from repro.models.embeddings import EmbeddingMatrix
from repro.serving.ann import ClusteredIndex, default_num_clusters


def clustered_embeddings(num_locations, dim=16, num_clusters=8, seed=5):
    """Unit-normalized rows drawn around well-separated cluster centers."""
    rng = np.random.default_rng(seed)
    centers = rng.standard_normal((num_clusters, dim))
    centers /= np.linalg.norm(centers, axis=1, keepdims=True)
    rows = centers[np.arange(num_locations) % num_clusters]
    rows = rows + 0.25 * rng.standard_normal((num_locations, dim))
    rows /= np.linalg.norm(rows, axis=1, keepdims=True)
    return EmbeddingMatrix.from_normalized(rows)


def exact_top_k(embeddings, profiles, top_k):
    scores = profiles.astype(np.float32) @ embeddings.matrix32.T
    return np.argsort(-scores, axis=1, kind="stable")[:, :top_k]


def query_profiles(embeddings, every=7):
    return embeddings.matrix32[::every]


class TestConstruction:
    def test_default_num_clusters_is_about_sqrt_l(self):
        assert default_num_clusters(1) == 1
        assert default_num_clusters(100) == 10
        assert default_num_clusters(2048) == 45

    def test_num_clusters_capped_at_row_count(self):
        embeddings = clustered_embeddings(6)
        index = ClusteredIndex(embeddings, num_clusters=50)
        assert index.num_clusters == 6

    def test_every_cluster_is_nonempty_and_sizes_sum_to_l(self):
        embeddings = clustered_embeddings(200)
        index = ClusteredIndex(embeddings, num_clusters=14)
        sizes = index.cluster_sizes
        assert sizes.shape == (14,)
        assert int(sizes.sum()) == 200
        assert int(sizes.min()) >= 1

    def test_construction_is_deterministic(self):
        embeddings = clustered_embeddings(300)
        first = ClusteredIndex(embeddings, num_clusters=12, nprobe=3)
        second = ClusteredIndex(embeddings, num_clusters=12, nprobe=3)
        profiles = query_profiles(embeddings)
        assert np.array_equal(first.probe(profiles), second.probe(profiles))
        tokens_a, scores_a = first.search(profiles, top_k=10)
        tokens_b, scores_b = second.search(profiles, top_k=10)
        for row_a, row_b in zip(tokens_a, tokens_b):
            assert np.array_equal(row_a, row_b)
        for row_a, row_b in zip(scores_a, scores_b):
            assert np.array_equal(row_a, row_b)

    @pytest.mark.parametrize(
        "kwargs", [{"num_clusters": 0}, {"nprobe": 0}, {"iterations": -1}]
    )
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            ClusteredIndex(clustered_embeddings(40), **kwargs)


class TestRecallContract:
    @pytest.mark.parametrize("num_locations", [64, 256, 1024, 2048])
    def test_recall_at_10_meets_the_serving_floor(self, num_locations):
        # The documented contract: default nprobe, recall@10 >= 0.95
        # against the exact float32 kernel, across vocabulary sizes.
        embeddings = clustered_embeddings(num_locations)
        index = ClusteredIndex(embeddings)
        profiles = query_profiles(embeddings)
        exact = exact_top_k(embeddings, profiles, top_k=10)
        assert index.recall_at_k(profiles, exact) >= 0.95

    def test_probing_every_cluster_is_an_exact_scan(self):
        embeddings = clustered_embeddings(150)
        index = ClusteredIndex(embeddings, num_clusters=10, nprobe=10)
        profiles = query_profiles(embeddings, every=11)
        exact = exact_top_k(embeddings, profiles, top_k=10)
        assert index.recall_at_k(profiles, exact) == 1.0

    def test_nprobe_override_trades_recall_for_work(self):
        embeddings = clustered_embeddings(512, num_clusters=16, seed=9)
        index = ClusteredIndex(embeddings, num_clusters=16, nprobe=1)
        profiles = query_profiles(embeddings)
        exact = exact_top_k(embeddings, profiles, top_k=10)
        narrow = index.recall_at_k(profiles, exact)
        wide = index.recall_at_k(profiles, exact, nprobe=16)
        assert wide == 1.0
        assert narrow <= wide

    def test_scores_match_the_exact_fast_kernel(self):
        # A token both paths retrieve gets the same float32 dot product
        # (up to BLAS accumulation order between mat-vec and matmul).
        embeddings = clustered_embeddings(200)
        index = ClusteredIndex(embeddings, num_clusters=10, nprobe=10)
        profiles = query_profiles(embeddings)
        tokens, scores = index.search(profiles, top_k=5)
        full = profiles.astype(np.float32) @ embeddings.matrix32.T
        for row, (row_tokens, row_scores) in enumerate(zip(tokens, scores)):
            np.testing.assert_allclose(
                row_scores, full[row, row_tokens], rtol=0, atol=1e-6
            )
            # Best first.
            assert np.all(np.diff(row_scores) <= 0)


class TestQueries:
    def test_probe_shape_and_ordering(self):
        embeddings = clustered_embeddings(300)
        index = ClusteredIndex(embeddings, num_clusters=12, nprobe=4)
        profiles = query_profiles(embeddings)
        probed = index.probe(profiles)
        assert probed.shape == (profiles.shape[0], 4)
        # Most-similar cluster first.
        similarity = profiles @ index._centroids.T
        ranked = np.take_along_axis(similarity, probed, axis=1)
        assert np.all(np.diff(ranked, axis=1) <= 1e-6)

    def test_probe_rejects_wrong_shapes(self):
        index = ClusteredIndex(clustered_embeddings(40, dim=16))
        with pytest.raises(ConfigError, match="shape"):
            index.probe(np.zeros((3, 5), dtype=np.float32))
        with pytest.raises(ConfigError, match="shape"):
            index.probe(np.zeros(16, dtype=np.float32))

    def test_search_truncates_to_available_candidates(self):
        embeddings = clustered_embeddings(30)
        index = ClusteredIndex(embeddings, num_clusters=6, nprobe=1)
        tokens, scores = index.search(embeddings.matrix32[:2], top_k=30)
        for row_tokens, row_scores in zip(tokens, scores):
            assert 1 <= row_tokens.size <= 30
            assert row_tokens.size == row_scores.size

    def test_search_rejects_bad_top_k(self):
        index = ClusteredIndex(clustered_embeddings(40))
        with pytest.raises(ConfigError, match="top_k"):
            index.search(query_profiles(clustered_embeddings(40)), top_k=0)


class TestDegenerateVocabularies:
    """Tiny-vocabulary edges: the index must stay correct, not just alive."""

    def test_vocab_smaller_than_requested_clusters(self):
        embeddings = clustered_embeddings(3)
        index = ClusteredIndex(embeddings, num_clusters=10, nprobe=10)
        assert index.num_clusters == 3
        assert index.nprobe == 3
        assert int(index.cluster_sizes.sum()) == 3
        assert int(index.cluster_sizes.min()) >= 1
        # With every cluster probed the scan is exact over all 3 tokens.
        tokens, scores = index.search(embeddings.matrix32, top_k=3)
        for row, (row_tokens, row_scores) in enumerate(zip(tokens, scores)):
            assert sorted(row_tokens.tolist()) == [0, 1, 2]
            assert row_tokens[0] == exact_top_k(embeddings, embeddings.matrix32, 1)[row, 0]
            assert np.all(np.diff(row_scores) <= 0)

    def test_single_poi_vocabulary(self):
        embeddings = clustered_embeddings(1)
        index = ClusteredIndex(embeddings, num_clusters=4, nprobe=8)
        assert index.num_clusters == 1
        assert index.nprobe == 1
        assert index.cluster_sizes.tolist() == [1]
        tokens, scores = index.search(embeddings.matrix32, top_k=5)
        assert tokens[0].tolist() == [0]
        assert scores[0].size == 1
        probed = index.probe(embeddings.matrix32)
        assert probed.shape == (1, 1)
        assert probed[0, 0] == 0

    def test_nprobe_above_cluster_count_clamps(self):
        embeddings = clustered_embeddings(50)
        index = ClusteredIndex(embeddings, num_clusters=5, nprobe=99)
        assert index.nprobe == 5
        profiles = query_profiles(embeddings)
        # Per-call oversubscription clamps too, and equals the full scan.
        probed = index.probe(profiles, nprobe=1000)
        assert probed.shape == (profiles.shape[0], 5)
        tokens, _ = index.search(profiles, top_k=50, nprobe=1000)
        expected = exact_top_k(embeddings, profiles, 50)
        for row, row_tokens in enumerate(tokens):
            assert row_tokens.size == 50
            assert set(row_tokens.tolist()) == set(expected[row].tolist())
