"""ModelRegistry: loading, versioning, and atomic hot-reload."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.exceptions import ConfigError, DataError, ServingError
from repro.serving.api import ModelRef
from repro.serving.registry import ModelRegistry


def test_current_before_load_raises():
    registry = ModelRegistry()
    assert not registry.loaded
    with pytest.raises(ServingError):
        registry.current()


def test_load_without_any_path_raises():
    with pytest.raises(ServingError):
        ModelRegistry().load()


def test_load_publishes_snapshot(artifact_path):
    registry = ModelRegistry(artifact_path)
    snapshot = registry.load()
    assert registry.loaded
    assert registry.current() is snapshot
    assert snapshot.version == 1
    assert snapshot.source == artifact_path
    assert snapshot.privacy["mechanism"] == "PLP"
    assert snapshot.loaded_at > 0
    result = snapshot.recommender.recommend(["poi-0", "poi-3"], top_k=5)
    assert len(result) == 5


def test_fallback_prior_configured_by_default(artifact_path):
    registry = ModelRegistry(artifact_path)
    recommender = registry.load().recommender
    assert recommender.fallback_scores is not None
    # Counts were saved descending, so the prior prefers poi-0.
    scores = recommender.score_all(["never-seen"])
    assert int(np.argmax(scores)) == 0


def test_with_fallback_false_leaves_prior_unset(artifact_path):
    registry = ModelRegistry(artifact_path, with_fallback=False)
    assert registry.load().recommender.fallback_scores is None


def test_exclude_input_is_threaded_through(artifact_path):
    registry = ModelRegistry(artifact_path, exclude_input=True)
    recommender = registry.load().recommender
    locations = [loc for loc, _ in recommender.recommend(["poi-7"], top_k=39)]
    assert "poi-7" not in locations


def test_reload_bumps_version_and_swaps_snapshot(artifact_path):
    registry = ModelRegistry(artifact_path)
    first = registry.load()
    second = registry.reload()
    assert second.version == first.version + 1
    assert registry.current() is second
    assert first.recommender is not second.recommender


def test_failed_reload_keeps_old_model(artifact_path, tmp_path):
    registry = ModelRegistry(artifact_path)
    published = registry.load()
    with pytest.raises(DataError):
        registry.load(tmp_path / "missing.npz")
    # The bad load never replaced the published snapshot.
    assert registry.current() is published
    # ... and did not poison the registry's reload path either.
    assert registry.reload().source == artifact_path


def test_load_explicit_path_becomes_reload_default(artifact_path):
    registry = ModelRegistry()
    registry.load(artifact_path)
    assert registry.reload().source == artifact_path


class TestMultiTenantRegistry:
    def test_add_model_and_load_all(self, artifact_path, countless_artifact_path):
        registry = ModelRegistry()
        registry.add_model("city", artifact_path)
        registry.add_model("beach", countless_artifact_path)
        # The pathless "default" slot exists but never publishes.
        assert registry.model_names() == ["beach", "city", "default"]
        snapshots = registry.load_all()
        assert [snapshot.name for snapshot in snapshots] == ["beach", "city"]
        assert all(snapshot.version == 1 for snapshot in snapshots)
        assert registry.models()["city"].source == artifact_path
        assert registry.models()["default"] is None

    def test_bad_model_names_are_rejected(self, artifact_path):
        registry = ModelRegistry()
        with pytest.raises(ConfigError):
            registry.add_model("", artifact_path)
        with pytest.raises(ConfigError):
            registry.add_model("city@2", artifact_path)

    def test_current_resolves_names_and_pinned_versions(
        self, artifact_path, countless_artifact_path
    ):
        registry = ModelRegistry()
        registry.add_model("city", artifact_path)
        registry.add_model("beach", countless_artifact_path)
        registry.load_all()
        assert registry.current("city").name == "city"
        assert registry.current(ModelRef("beach")).name == "beach"
        assert registry.current("city@1").version == 1
        with pytest.raises(ServingError):
            registry.current("city@2")
        with pytest.raises(ServingError):
            registry.current("unregistered")

    def test_stale_pin_rejected_after_reload_and_other_names_untouched(
        self, artifact_path, countless_artifact_path
    ):
        registry = ModelRegistry()
        registry.add_model("city", artifact_path)
        registry.add_model("beach", countless_artifact_path)
        registry.load_all()
        registry.reload("city")
        assert registry.current("city@2").version == 2
        with pytest.raises(ServingError):
            registry.current("city@1")
        # Reloading one name never bumps (or disturbs) its neighbors.
        assert registry.current("beach").version == 1

    def test_registered_but_unloaded_name_raises_until_loaded(self, artifact_path):
        registry = ModelRegistry()
        registry.add_model("city", artifact_path)
        with pytest.raises(ServingError):
            registry.current("city")
        registry.load(name="city")
        assert registry.current("city").version == 1


class TestReloadRaces:
    def test_concurrent_reloads_keep_versions_unique_and_monotonic(
        self, artifact_path
    ):
        registry = ModelRegistry(artifact_path)
        registry.load()
        writers, reloads_each = 4, 5
        published = []
        observed = [[] for _ in range(2)]
        stop = threading.Event()
        errors = []

        def reloader():
            try:
                for _ in range(reloads_each):
                    published.append(registry.reload().version)
            except Exception as error:  # pragma: no cover - diagnostic
                errors.append(error)

        def reader(slot):
            try:
                while not stop.is_set():
                    observed[slot].append(registry.current().version)
            except Exception as error:  # pragma: no cover - diagnostic
                errors.append(error)

        threads = [threading.Thread(target=reloader) for _ in range(writers)]
        readers = [threading.Thread(target=reader, args=(i,)) for i in range(2)]
        for thread in readers + threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        stop.set()
        for thread in readers:
            thread.join(timeout=30)

        assert not errors
        # Every reload got its own version, handed out atomically.
        assert sorted(published) == list(range(2, 2 + writers * reloads_each))
        assert registry.current().version == 1 + writers * reloads_each
        # Readers racing the swaps only ever saw fully published
        # snapshots, in non-decreasing version order — never a rollback
        # or a half-built model.
        for sequence in observed:
            assert sequence == sorted(sequence)
