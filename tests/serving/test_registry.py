"""ModelRegistry: loading, versioning, and atomic hot-reload."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import DataError, ServingError
from repro.serving.registry import ModelRegistry


def test_current_before_load_raises():
    registry = ModelRegistry()
    assert not registry.loaded
    with pytest.raises(ServingError):
        registry.current()


def test_load_without_any_path_raises():
    with pytest.raises(ServingError):
        ModelRegistry().load()


def test_load_publishes_snapshot(artifact_path):
    registry = ModelRegistry(artifact_path)
    snapshot = registry.load()
    assert registry.loaded
    assert registry.current() is snapshot
    assert snapshot.version == 1
    assert snapshot.source == artifact_path
    assert snapshot.privacy["mechanism"] == "PLP"
    assert snapshot.loaded_at > 0
    result = snapshot.recommender.recommend(["poi-0", "poi-3"], top_k=5)
    assert len(result) == 5


def test_fallback_prior_configured_by_default(artifact_path):
    registry = ModelRegistry(artifact_path)
    recommender = registry.load().recommender
    assert recommender.fallback_scores is not None
    # Counts were saved descending, so the prior prefers poi-0.
    scores = recommender.score_all(["never-seen"])
    assert int(np.argmax(scores)) == 0


def test_with_fallback_false_leaves_prior_unset(artifact_path):
    registry = ModelRegistry(artifact_path, with_fallback=False)
    assert registry.load().recommender.fallback_scores is None


def test_exclude_input_is_threaded_through(artifact_path):
    registry = ModelRegistry(artifact_path, exclude_input=True)
    recommender = registry.load().recommender
    locations = [loc for loc, _ in recommender.recommend(["poi-7"], top_k=39)]
    assert "poi-7" not in locations


def test_reload_bumps_version_and_swaps_snapshot(artifact_path):
    registry = ModelRegistry(artifact_path)
    first = registry.load()
    second = registry.reload()
    assert second.version == first.version + 1
    assert registry.current() is second
    assert first.recommender is not second.recommender


def test_failed_reload_keeps_old_model(artifact_path, tmp_path):
    registry = ModelRegistry(artifact_path)
    published = registry.load()
    with pytest.raises(DataError):
        registry.load(tmp_path / "missing.npz")
    # The bad load never replaced the published snapshot.
    assert registry.current() is published
    # ... and did not poison the registry's reload path either.
    assert registry.reload().source == artifact_path


def test_load_explicit_path_becomes_reload_default(artifact_path):
    registry = ModelRegistry()
    registry.load(artifact_path)
    assert registry.reload().source == artifact_path
