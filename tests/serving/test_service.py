"""RecommendService: request path, degradation, metrics, hot-reload."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigError, ServingError
from repro.models.serialization import load_recommender
from repro.serving.metrics import JsonlServingObserver, MetricsObserver
from repro.serving.registry import ModelRegistry
from repro.serving.service import RecommendService


@pytest.fixture()
def service(artifact_path):
    service = RecommendService.from_artifact(artifact_path)
    yield service
    service.close()


def test_recommend_answers_with_model_version(service):
    result = service.recommend(["poi-0", "poi-5"], top_k=3)
    assert len(result["recommendations"]) == 3
    assert result["model_version"] == 1
    assert result["fallback"] is False
    for location, score in result["recommendations"]:
        assert location.startswith("poi-")
        assert np.isfinite(score)


def test_recommend_matches_direct_recommender_in_exact_mode(artifact_path):
    service = RecommendService.from_artifact(artifact_path, mode="exact")
    try:
        direct = load_recommender(artifact_path, with_fallback=True)
        query = ["poi-1", "poi-2", "poi-1"]
        served = service.recommend(query, top_k=10)["recommendations"]
        expected = [[loc, score] for loc, score in direct.recommend(query, top_k=10)]
        assert served == expected
    finally:
        service.close()


def test_unknown_pois_are_dropped_not_fatal(service):
    mixed = service.recommend(["poi-3", "never-seen-1", "never-seen-2"])
    pure = service.recommend(["poi-3"])
    assert mixed["recommendations"] == pure["recommendations"]
    assert mixed["fallback"] is False


def test_all_unknown_query_uses_popularity_fallback(service):
    result = service.recommend(["never-seen"], top_k=5)
    assert result["fallback"] is True
    # Counts were saved descending: the prior ranks poi-0 first.
    assert result["recommendations"][0][0] == "poi-0"
    assert service.recommend([], top_k=5)["fallback"] is True


def test_all_unknown_without_fallback_is_a_config_error(artifact_path):
    service = RecommendService.from_artifact(artifact_path, with_fallback=False)
    try:
        with pytest.raises(ConfigError, match="no fallback"):
            service.recommend(["never-seen"])
        # The service keeps answering valid requests afterwards.
        assert service.recommend(["poi-0"])["model_version"] == 1
    finally:
        service.close()


def test_request_validation(service):
    with pytest.raises(ConfigError):
        service.recommend("poi-0")  # a bare string is not a list
    with pytest.raises(ConfigError):
        service.recommend(["poi-0"], top_k=0)
    with pytest.raises(ConfigError):
        service.recommend(["poi-0"], top_k=101)  # above top_k_limit
    with pytest.raises(ConfigError):
        service.recommend(["poi-0"], top_k="many")


def test_no_model_loaded_maps_to_serving_error(artifact_path):
    service = RecommendService(ModelRegistry(artifact_path))
    try:
        with pytest.raises(ServingError, match="no model loaded"):
            service.recommend(["poi-0"])
        assert service.healthz() == {"status": "unloaded"}
    finally:
        service.close()


def test_healthz_reports_loaded_model(service, artifact_path):
    payload = service.healthz()
    assert payload["status"] == "ok"
    assert payload["model_version"] == 1
    assert payload["source"] == artifact_path
    assert payload["num_locations"] == 40
    assert payload["privacy"]["epsilon"] == 2.0


def test_metrics_aggregate_requests_and_batches(service):
    service.recommend(["poi-0"])
    service.recommend(["never-seen"])
    with pytest.raises(ConfigError):
        service.recommend(["poi-0"], top_k=0)
    snapshot = service.metrics()
    assert snapshot["requests"]["ok"] == 2
    assert snapshot["requests"]["invalid"] == 1
    assert snapshot["requests_total"] == 3
    assert snapshot["fallback_answers"] == 1
    assert snapshot["request_latency"]["count"] == 3
    assert snapshot["batches"]["queries_scored"] == 2
    assert snapshot["batches"]["max_batch_size"] >= 1


def test_reload_bumps_version_and_failure_keeps_serving(artifact_path, tmp_path):
    registry = ModelRegistry(artifact_path)
    registry.load()
    service = RecommendService(registry)
    try:
        payload = service.reload()
        assert payload["model_version"] == 2
        assert service.recommend(["poi-0"])["model_version"] == 2
        # Point the registry at a broken artifact: reload fails, old serves.
        registry._path = str(tmp_path / "missing.npz")
        with pytest.raises(Exception):
            service.reload()
        assert service.recommend(["poi-0"])["model_version"] == 2
        snapshot = service.metrics()
        assert snapshot["reloads"] == {"ok": 1, "failed": 1}
        assert snapshot["model_version"] == 2
    finally:
        service.close()


def test_custom_observers_receive_events(artifact_path, tmp_path):
    log_path = tmp_path / "serving.jsonl"
    jsonl = JsonlServingObserver(log_path)
    metrics = MetricsObserver()
    service = RecommendService.from_artifact(
        artifact_path, observers=[jsonl, metrics]
    )
    try:
        service.recommend(["poi-0"])
        service.reload()
    finally:
        service.close()
        jsonl.close()
    # The caller's MetricsObserver is the one backing service.metrics().
    assert metrics.snapshot()["requests_total"] == 1
    assert service.metrics() == metrics.snapshot()
    lines = log_path.read_text().splitlines()
    events = {line.split('"')[3] for line in lines}  # {"event": "..."}
    assert {"request", "batch", "reload"} <= events


def test_close_fails_queued_requests_fast(service):
    service.close()
    with pytest.raises(ServingError, match="closed"):
        service.recommend(["poi-0"])
    snapshot = service.metrics()
    assert snapshot["requests"].get("error", 0) == 1
