"""MicroBatcher: coalescing, per-request degradation, deadlines, close."""

from __future__ import annotations

import threading
import time

import pytest

from repro.exceptions import ConfigError, ServingError
from repro.serving.batcher import MicroBatcher


def _echo_handler(items):
    return [item * 2 for item in items]


def test_submit_returns_handler_result():
    batcher = MicroBatcher(_echo_handler)
    try:
        assert batcher.submit(21) == 42
    finally:
        batcher.close()


def test_parameter_validation():
    with pytest.raises(ConfigError):
        MicroBatcher(_echo_handler, max_batch=0)
    with pytest.raises(ConfigError):
        MicroBatcher(_echo_handler, max_wait_seconds=-1)
    with pytest.raises(ConfigError):
        MicroBatcher(_echo_handler, timeout_seconds=0)


def test_concurrent_submissions_coalesce_into_one_batch():
    batch_sizes = []

    def handler(items):
        batch_sizes.append(len(items))
        return list(items)

    barrier = threading.Barrier(8)
    results = [None] * 8
    batcher = MicroBatcher(handler, max_wait_seconds=0.05)

    def worker(i):
        barrier.wait()
        results[i] = batcher.submit(i)

    try:
        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    finally:
        batcher.close()
    assert results == list(range(8))  # every caller got its own answer
    assert sum(batch_sizes) == 8
    assert max(batch_sizes) > 1  # at least some coalescing happened


def test_returned_exception_fails_only_that_caller():
    def handler(items):
        return [
            ConfigError(f"bad item {item}") if item < 0 else item for item in items
        ]

    batcher = MicroBatcher(handler)
    try:
        assert batcher.submit(5) == 5
        with pytest.raises(ConfigError, match="bad item -1"):
            batcher.submit(-1)
        assert batcher.submit(7) == 7  # batcher still healthy afterwards
    finally:
        batcher.close()


def test_raised_exception_fails_the_whole_batch():
    def handler(items):
        raise RuntimeError("handler exploded")

    batcher = MicroBatcher(handler)
    try:
        with pytest.raises(RuntimeError, match="handler exploded"):
            batcher.submit(1)
    finally:
        batcher.close()


def test_result_count_mismatch_is_a_serving_error():
    batcher = MicroBatcher(lambda items: [])
    try:
        with pytest.raises(ServingError, match="returned 0 results"):
            batcher.submit(1)
    finally:
        batcher.close()


def test_submit_deadline_raises_serving_error():
    release = threading.Event()

    def handler(items):
        release.wait(5.0)
        return list(items)

    batcher = MicroBatcher(handler, max_wait_seconds=0.0)
    try:
        with pytest.raises(ServingError, match="timed out"):
            batcher.submit(1, timeout=0.05)
    finally:
        release.set()
        batcher.close()


def test_submit_after_close_fails_fast():
    batcher = MicroBatcher(_echo_handler)
    batcher.close()
    batcher.close()  # idempotent
    with pytest.raises(ServingError, match="closed"):
        batcher.submit(1)


def test_on_batch_callback_sees_size_and_latency():
    observed = []
    batcher = MicroBatcher(
        _echo_handler, on_batch=lambda size, latency: observed.append((size, latency))
    )
    try:
        batcher.submit(1)
        deadline = time.monotonic() + 1.0
        while not observed and time.monotonic() < deadline:
            time.sleep(0.001)
    finally:
        batcher.close()
    assert observed and observed[0][0] == 1 and observed[0][1] >= 0.0
