"""End-to-end HTTP tests against a live ThreadingHTTPServer."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.serving.http import make_server
from repro.serving.service import RecommendService


@pytest.fixture(scope="module")
def server_url(artifact_path):
    service = RecommendService.from_artifact(artifact_path, mode="exact")
    server = make_server(service, port=0, quiet=True)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}"
    server.shutdown()
    server.server_close()
    service.close()


def _get(url):
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.status, json.loads(response.read())


def _get_text(url):
    with urllib.request.urlopen(url, timeout=5) as response:
        return (
            response.status,
            response.headers.get("Content-Type", ""),
            response.read().decode("utf-8"),
        )


def _post(url, payload):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=5) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def test_healthz(server_url):
    status, payload = _get(server_url + "/healthz")
    assert status == 200
    assert payload["status"] == "ok"
    assert payload["num_locations"] == 40
    assert payload["privacy"]["mechanism"] == "PLP"


def test_recommend_round_trip(server_url):
    status, payload = _post(
        server_url + "/recommend", {"recent": ["poi-0", "poi-4"], "top_k": 3}
    )
    assert status == 200
    assert len(payload["recommendations"]) == 3
    assert payload["fallback"] is False
    for location, score in payload["recommendations"]:
        assert isinstance(location, str) and isinstance(score, float)


def test_recommend_fallback_over_http(server_url):
    status, payload = _post(server_url + "/recommend", {"recent": ["never-seen"]})
    assert status == 200
    assert payload["fallback"] is True
    assert payload["recommendations"][0][0] == "poi-0"


def test_bad_requests_map_to_400(server_url):
    status, payload = _post(server_url + "/recommend", {})
    assert status == 400 and "recent" in payload["error"]
    status, _ = _post(server_url + "/recommend", {"recent": "poi-0"})
    assert status == 400
    status, _ = _post(server_url + "/recommend", {"recent": ["poi-0"], "top_k": 0})
    assert status == 400
    # Invalid JSON body.
    request = urllib.request.Request(
        server_url + "/recommend", data=b"{not json", method="POST"
    )
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(request, timeout=5)
    assert excinfo.value.code == 400


def test_unknown_paths_are_404(server_url):
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(server_url + "/nope", timeout=5)
    assert excinfo.value.code == 404
    status, _ = _post(server_url + "/nope", {})
    assert status == 404


def test_reload_bumps_version(server_url):
    _, before = _get(server_url + "/healthz")
    status, payload = _post(server_url + "/reload", {})
    assert status == 200
    assert payload["model_version"] == before["model_version"] + 1


def test_metrics_endpoint_serves_prometheus_by_default(server_url):
    _post(server_url + "/recommend", {"recent": ["poi-1"]})
    status, content_type, text = _get_text(server_url + "/metrics")
    assert status == 200
    assert content_type.startswith("text/plain")
    assert "# TYPE repro_serving_requests_total counter" in text
    assert 'repro_serving_requests_total{status="ok"}' in text
    assert "repro_serving_request_seconds_bucket" in text


def test_metrics_endpoint_reflects_traffic(server_url):
    _post(server_url + "/recommend", {"recent": ["poi-1"]})
    status, payload = _get(server_url + "/metrics?format=json")
    assert status == 200
    assert payload["requests"]["ok"] >= 1
    assert payload["batches"]["queries_scored"] >= 1


def test_metrics_endpoint_jsonl_format(server_url):
    _post(server_url + "/recommend", {"recent": ["poi-1"]})
    status, _, text = _get_text(server_url + "/metrics?format=jsonl")
    assert status == 200
    rows = [json.loads(line) for line in text.splitlines() if line]
    assert any(row["metric"] == "repro_serving_requests_total" for row in rows)


def test_metrics_endpoint_rejects_unknown_format(server_url):
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(server_url + "/metrics?format=xml", timeout=5)
    assert excinfo.value.code == 400


def test_concurrent_requests_all_answered(server_url):
    results = [None] * 12
    errors = []

    def worker(i):
        try:
            results[i] = _post(
                server_url + "/recommend", {"recent": [f"poi-{i % 40}"], "top_k": 2}
            )
        except Exception as error:  # pragma: no cover - diagnostic
            errors.append(error)

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(12)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    assert all(status == 200 for status, _ in results)
    assert all(len(payload["recommendations"]) == 2 for _, payload in results)
