"""The shared read-only embedding store (mmap sidecar cache).

Compressed ``.npz`` archives cannot be memory-mapped, so serving builds a
``<artifact>.npz.mmapcache/`` sidecar of plain ``.npy`` files and maps
them read-only. These tests pin the contract: byte-identical scores to
the heap path, cache reuse across loads, staleness detection, and — the
point of the exercise — N registries sharing one physical copy of θ
instead of paying N private heap copies (the RSS assertion).
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import numpy as np

from repro.models.embeddings import EmbeddingMatrix
from repro.models.serialization import (
    ensure_mmap_cache,
    load_deployable_model,
    save_deployable_model,
)
from repro.models.vocabulary import LocationVocabulary
from repro.serving.registry import ModelRegistry


def _cache_dir(artifact_path) -> Path:
    path = Path(artifact_path)
    return path.with_name(path.name + ".mmapcache")


_RSS_PROBE = """
import os, sys
from repro.serving.registry import ModelRegistry

def rss():
    with open("/proc/self/statm") as handle:
        return int(handle.read().split()[1]) * os.sysconf("SC_PAGE_SIZE")

artifact, mmap, loads = sys.argv[1], sys.argv[2] == "mmap", int(sys.argv[3])
ModelRegistry(artifact, mmap=mmap).load()  # pay imports/caches up front
before = rss()
snapshots = [ModelRegistry(artifact, mmap=mmap).load() for _ in range(loads)]
for snapshot in snapshots:
    snapshot.recommender.recommend(["poi-0"], top_k=5)  # touch the pages
print(rss() - before)
"""


def _subprocess_load_delta(artifact, mmap: bool, loads: int) -> int:
    """RSS growth of N retained registry loads, in a fresh interpreter."""
    import repro

    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(repro.__file__).parent.parent)
    result = subprocess.run(
        [
            sys.executable,
            "-c",
            _RSS_PROBE,
            str(artifact),
            "mmap" if mmap else "heap",
            str(loads),
        ],
        capture_output=True,
        text=True,
        env=env,
        check=True,
        timeout=120,
    )
    return int(result.stdout.strip())


class TestSidecarCache:
    def test_returns_readonly_memmaps_matching_the_heap_load(self, artifact_path):
        matrix64, matrix32 = ensure_mmap_cache(artifact_path)
        assert isinstance(matrix64, np.memmap)
        assert isinstance(matrix32, np.memmap)
        assert not matrix64.flags.writeable
        assert not matrix32.flags.writeable
        heap, _, _ = load_deployable_model(artifact_path)
        # Byte-identical to the in-heap normalize-then-cast path.
        assert np.array_equal(np.asarray(matrix64), heap.matrix)
        assert np.array_equal(np.asarray(matrix32), heap.matrix32)

    def test_cache_is_reused_not_rebuilt(self, artifact_path):
        ensure_mmap_cache(artifact_path)
        cache = _cache_dir(artifact_path)
        stamps = {name: (cache / name).stat().st_mtime_ns for name in os.listdir(cache)}
        ensure_mmap_cache(artifact_path)
        assert {
            name: (cache / name).stat().st_mtime_ns for name in os.listdir(cache)
        } == stamps

    def test_stale_cache_is_rebuilt_when_the_artifact_changes(self, tmp_path):
        rng = np.random.default_rng(3)
        vocabulary = LocationVocabulary.from_locations([f"p-{i}" for i in range(12)])
        artifact = tmp_path / "model.npz"
        save_deployable_model(
            artifact, EmbeddingMatrix(rng.normal(size=(12, 4))), vocabulary
        )
        first, _ = ensure_mmap_cache(artifact)
        save_deployable_model(
            artifact, EmbeddingMatrix(rng.normal(size=(12, 4))), vocabulary
        )
        os.utime(artifact, ns=(os.stat(artifact).st_mtime_ns + 10**9,) * 2)
        second, _ = ensure_mmap_cache(artifact)
        assert not np.array_equal(np.asarray(first), np.asarray(second))
        heap, _, _ = load_deployable_model(artifact)
        assert np.array_equal(np.asarray(second), heap.matrix)


class TestSharedServingLoads:
    def test_registry_mmap_load_is_memmap_backed(self, artifact_path):
        registry = ModelRegistry(artifact_path, mmap=True)
        embeddings = registry.load().recommender.embeddings
        assert isinstance(embeddings.matrix, np.memmap)
        assert isinstance(embeddings.matrix32, np.memmap)
        assert Path(embeddings.matrix.filename) == (
            _cache_dir(artifact_path) / "embeddings64.npy"
        )

    def test_mmap_and_heap_loads_recommend_identically(self, artifact_path):
        mapped = ModelRegistry(artifact_path, mmap=True).load().recommender
        heap = ModelRegistry(artifact_path, mmap=False).load().recommender
        query = ["poi-0", "poi-7"]
        assert mapped.recommend(query, top_k=10) == heap.recommend(query, top_k=10)

    def test_many_registries_map_one_physical_copy(self, artifact_path):
        registries = [ModelRegistry(artifact_path, mmap=True) for _ in range(4)]
        matrices = [r.load().recommender.embeddings.matrix for r in registries]
        filenames = {m.filename for m in matrices}
        assert len(filenames) == 1

    def test_rss_stays_bounded_across_many_mmap_loads(self, tmp_path):
        # A big-enough matrix that private copies dominate RSS: 6000 x 128
        # float64 is ~6 MiB per heap load. Each measurement runs in a
        # fresh subprocess so allocator arena reuse between the two
        # phases cannot hide (or fake) the difference.
        num_locations, dim, loads = 6000, 128, 8
        rng = np.random.default_rng(17)
        artifact = tmp_path / "big.npz"
        save_deployable_model(
            artifact,
            EmbeddingMatrix(rng.normal(size=(num_locations, dim))),
            LocationVocabulary.from_locations(
                [f"poi-{i}" for i in range(num_locations)]
            ),
        )
        float64_bytes = num_locations * dim * 8
        ensure_mmap_cache(artifact)  # build cost paid outside the measurement

        delta_mmap = _subprocess_load_delta(artifact, mmap=True, loads=loads)
        delta_heap = _subprocess_load_delta(artifact, mmap=False, loads=loads)

        # All N mmap loads map the same physical pages, so switching the
        # heap path on must cost at least the extra private matrix
        # copies. Both runs pay identical vocabulary/interpreter
        # overhead, which therefore cancels out of the difference; the
        # (loads - 3) floor absorbs allocator noise.
        assert delta_mmap < delta_heap
        assert delta_heap - delta_mmap > (loads - 3) * float64_bytes, (
            f"mmap loads saved only {delta_heap - delta_mmap} bytes over "
            f"{loads} heap loads (one matrix is {float64_bytes} bytes)"
        )
