"""Tests for the synthetic Foursquare-like generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.checkins import CheckinDataset
from repro.data.synthetic import TOKYO_BBOX, SyntheticConfig, generate_checkins
from repro.exceptions import ConfigError


class TestConfigValidation:
    def test_defaults_valid(self):
        SyntheticConfig()

    def test_rejects_bad_values(self):
        with pytest.raises(ConfigError):
            SyntheticConfig(num_users=0)
        with pytest.raises(ConfigError):
            SyntheticConfig(num_locations=1)
        with pytest.raises(ConfigError):
            SyntheticConfig(num_clusters=0)
        with pytest.raises(ConfigError):
            SyntheticConfig(num_clusters=1000, num_locations=100)
        with pytest.raises(ConfigError):
            SyntheticConfig(preferred_cluster_prob=1.5)
        with pytest.raises(ConfigError):
            SyntheticConfig(months=0.0)


class TestGenerator:
    @pytest.fixture(scope="class")
    def checkins(self):
        config = SyntheticConfig(num_users=60, num_locations=50, num_clusters=5)
        return generate_checkins(config, rng=42)

    def test_deterministic(self):
        config = SyntheticConfig(num_users=10, num_locations=20, num_clusters=3)
        a = generate_checkins(config, rng=1)
        b = generate_checkins(config, rng=1)
        assert a == b

    def test_different_seeds_differ(self):
        config = SyntheticConfig(num_users=10, num_locations=20, num_clusters=3)
        a = generate_checkins(config, rng=1)
        b = generate_checkins(config, rng=2)
        assert a != b

    def test_all_users_present(self, checkins):
        assert {c.user for c in checkins} == set(range(60))

    def test_min_checkins_respected(self, checkins):
        dataset = CheckinDataset(checkins)
        for history in dataset:
            assert len(history) >= SyntheticConfig().min_checkins_per_user

    def test_coordinates_inside_bbox(self, checkins):
        lat_s, lat_n, lon_w, lon_e = TOKYO_BBOX
        for checkin in checkins[:500]:
            assert lat_s <= checkin.latitude <= lat_n
            assert lon_w <= checkin.longitude <= lon_e

    def test_location_ids_in_range(self, checkins):
        assert all(0 <= c.location < 50 for c in checkins)

    def test_timestamps_sorted_per_user(self, checkins):
        dataset = CheckinDataset(checkins)
        for history in dataset:
            timestamps = history.timestamps()
            assert timestamps == sorted(timestamps)

    def test_popularity_is_skewed(self, checkins):
        # Zipf popularity: the busiest location far exceeds the uniform
        # share, and the top fifth of locations dominates the volume.
        counts = np.bincount([c.location for c in checkins], minlength=50)
        assert counts.max() > 2 * counts.mean()
        top_fifth = np.sort(counts)[-10:].sum()
        assert top_fifth > 0.35 * counts.sum()

    def test_within_session_repeats_rare(self, checkins):
        # Consecutive same-location check-ins should be rare (real
        # check-in sessions do not revisit a venue within hours).
        dataset = CheckinDataset(checkins)
        repeats = total = 0
        for history in dataset:
            locations = history.locations()
            for a, b in zip(locations, locations[1:]):
                repeats += a == b
                total += 1
        assert repeats / total < 0.05


class TestPaperScale:
    def test_dimensions_match_paper(self):
        config = SyntheticConfig.paper_scale()
        assert config.num_users == 4602
        assert config.num_locations == 5069
        assert config.mean_checkins_per_user == 160.0
        assert config.months == 22.0

    def test_validates(self):
        # paper_scale must pass the config's own validation.
        SyntheticConfig.paper_scale()


class TestScaling:
    def test_heavy_tail_of_user_activity(self):
        config = SyntheticConfig(
            num_users=300, num_locations=100, num_clusters=8, checkins_sigma=1.0
        )
        dataset = CheckinDataset(generate_checkins(config, rng=3))
        counts = sorted(len(history) for history in dataset)
        # Long tail: top user far above the median.
        assert counts[-1] > 4 * counts[len(counts) // 2]
