"""Tests for repro.data.checkins."""

from __future__ import annotations

import pytest

from repro.data.checkins import CheckinDataset
from repro.exceptions import DataError
from repro.types import CheckIn


def _make(user: int, locations: list[int], start: float = 0.0) -> list[CheckIn]:
    return [
        CheckIn(user=user, location=location, timestamp=start + i)
        for i, location in enumerate(locations)
    ]


@pytest.fixture()
def dataset() -> CheckinDataset:
    checkins = _make(1, [10, 11, 10]) + _make(2, [11, 12]) + _make(3, [13])
    return CheckinDataset(checkins)


class TestBasics:
    def test_counts(self, dataset):
        assert dataset.num_users == 3
        assert dataset.num_locations == 4
        assert dataset.num_checkins == 6

    def test_users(self, dataset):
        assert set(dataset.users) == {1, 2, 3}
        assert 1 in dataset
        assert 9 not in dataset

    def test_history(self, dataset):
        assert dataset.history(1).locations() == [10, 11, 10]

    def test_unknown_user_raises(self, dataset):
        with pytest.raises(DataError):
            dataset.history(99)

    def test_empty_rejected(self):
        with pytest.raises(DataError):
            CheckinDataset([])

    def test_location_set(self, dataset):
        assert dataset.location_set() == {10, 11, 12, 13}

    def test_user_sequences(self, dataset):
        sequences = dataset.user_sequences()
        assert sequences[2] == [11, 12]


class TestStats:
    def test_density(self, dataset):
        # Distinct (user, location) pairs: u1 -> {10,11}, u2 -> {11,12}, u3 -> {13}.
        assert dataset.density() == pytest.approx(5 / (3 * 4))

    def test_stats_fields(self, dataset):
        stats = dataset.stats()
        assert stats.num_users == 3
        assert stats.min_user_checkins == 1
        assert stats.max_user_checkins == 3
        assert stats.mean_user_checkins == pytest.approx(2.0)

    def test_stats_as_dict(self, dataset):
        row = dataset.stats().as_dict()
        assert row["users"] == 3
        assert "density" in row


class TestSubset:
    def test_restricts_users(self, dataset):
        subset = dataset.subset([1, 3])
        assert set(subset.users) == {1, 3}
        assert subset.num_checkins == 4

    def test_unknown_user_rejected(self, dataset):
        with pytest.raises(DataError):
            dataset.subset([1, 42])


class TestSyntheticIntegration:
    def test_fixture_respects_filters(self, small_dataset):
        # After paper preprocessing: every user >= 10 check-ins, every
        # location visited by >= 2 users.
        for history in small_dataset:
            assert len(history) >= 10
        visitors: dict[int, set[int]] = {}
        for history in small_dataset:
            for checkin in history.checkins:
                visitors.setdefault(checkin.location, set()).add(checkin.user)
        assert all(len(users) >= 2 for users in visitors.values())

    def test_histories_time_sorted(self, small_dataset):
        for history in small_dataset:
            timestamps = history.timestamps()
            assert timestamps == sorted(timestamps)
