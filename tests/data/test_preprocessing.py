"""Tests for the paper's preprocessing pipeline."""

from __future__ import annotations

from collections import Counter, defaultdict

import pytest

from repro.data.preprocessing import (
    filter_bounding_box,
    filter_min_location_users,
    filter_min_user_checkins,
    paper_preprocessing,
)
from repro.exceptions import DataError
from repro.types import CheckIn


def _checkin(user, location, t=0.0, lat=35.6, lon=139.7):
    return CheckIn(user=user, location=location, timestamp=t, latitude=lat, longitude=lon)


class TestUserFilter:
    def test_drops_sparse_users(self):
        checkins = [_checkin(1, i, t=i) for i in range(5)] + [_checkin(2, 9)]
        kept = filter_min_user_checkins(checkins, 3)
        assert {c.user for c in kept} == {1}

    def test_threshold_inclusive(self):
        checkins = [_checkin(1, i, t=i) for i in range(3)]
        assert len(filter_min_user_checkins(checkins, 3)) == 3

    def test_rejects_zero_threshold(self):
        with pytest.raises(DataError):
            filter_min_user_checkins([], 0)


class TestLocationFilter:
    def test_drops_single_visitor_locations(self):
        checkins = [
            _checkin(1, 100),
            _checkin(2, 100),
            _checkin(1, 200),  # only user 1 visits 200
        ]
        kept = filter_min_location_users(checkins, 2)
        assert {c.location for c in kept} == {100}

    def test_repeat_visits_by_one_user_do_not_count(self):
        checkins = [_checkin(1, 100, t=0), _checkin(1, 100, t=1)]
        assert filter_min_location_users(checkins, 2) == []


class TestBboxFilter:
    def test_keeps_inside(self):
        inside = _checkin(1, 1, lat=35.6, lon=139.7)
        outside = _checkin(1, 2, lat=40.0, lon=139.7)
        kept = filter_bounding_box([inside, outside], (35.5, 35.8, 139.4, 139.9))
        assert kept == [inside]

    def test_drops_missing_coordinates(self):
        no_coords = CheckIn(user=1, location=1, timestamp=0.0)
        assert filter_bounding_box([no_coords], (35.5, 35.8, 139.4, 139.9)) == []

    def test_degenerate_box_rejected(self):
        with pytest.raises(DataError):
            filter_bounding_box([], (36.0, 35.0, 139.0, 140.0))


class TestPaperPipeline:
    def test_fixed_point_invariants(self, small_checkins):
        kept = paper_preprocessing(small_checkins, 10, 2)
        user_counts = Counter(c.user for c in kept)
        assert all(count >= 10 for count in user_counts.values())
        visitors = defaultdict(set)
        for checkin in kept:
            visitors[checkin.location].add(checkin.user)
        assert all(len(users) >= 2 for users in visitors.values())

    def test_cascading_filters(self):
        # Location 200 has one visitor -> dropped -> user 2 falls below the
        # check-in threshold -> dropped entirely; users 1 and 3 both keep
        # location 100 alive and survive.
        checkins = (
            [_checkin(1, 100, t=i) for i in range(3)]
            + [_checkin(3, 100, t=i) for i in range(3)]
            + [_checkin(2, 100, t=i) for i in range(2)]
            + [_checkin(2, 200, t=10 + i) for i in range(1)]
        )
        kept = paper_preprocessing(checkins, min_user_checkins=3, min_location_users=2)
        assert {c.user for c in kept} == {1, 3}
        assert {c.location for c in kept} == {100}

    def test_everything_filtered_raises(self):
        checkins = [_checkin(1, 100)]
        with pytest.raises(DataError):
            paper_preprocessing(checkins, min_user_checkins=10, min_location_users=2)

    def test_bbox_applied_first(self):
        inside = [_checkin(1, 100, t=i) for i in range(2)] + [
            _checkin(2, 100, t=i) for i in range(2)
        ]
        outside = [_checkin(3, 100, lat=50.0)]
        kept = paper_preprocessing(
            inside + outside,
            min_user_checkins=2,
            min_location_users=2,
            bbox=(35.5, 35.8, 139.4, 139.9),
        )
        assert {c.user for c in kept} == {1, 2}
