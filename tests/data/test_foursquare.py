"""Tests for the real-data Foursquare TSV loader."""

from __future__ import annotations

import pytest

from repro.data.foursquare import load_foursquare_tsv
from repro.exceptions import DataError

_ROW = (
    "{user}\t{venue}\tcat-id\tBar\t{lat}\t{lon}\t540\t"
    "Tue Apr 03 18:0{sec}:06 +0000 2012\n"
)


def _write_sample(path, rows):
    path.write_text("".join(rows), encoding="utf-8")
    return path


class TestLoader:
    def test_parses_rows(self, tmp_path):
        rows = [
            _ROW.format(user="u1", venue="vA", lat="35.6", lon="139.7", sec=1),
            _ROW.format(user="u2", venue="vB", lat="35.7", lon="139.8", sec=2),
            _ROW.format(user="u1", venue="vB", lat="35.7", lon="139.8", sec=3),
        ]
        path = _write_sample(tmp_path / "tky.txt", rows)
        checkins = load_foursquare_tsv(path)
        assert len(checkins) == 3
        # Dense remapping in first-appearance order.
        assert checkins[0].user == 0
        assert checkins[1].user == 1
        assert checkins[2].user == 0
        assert checkins[0].location == 0
        assert checkins[2].location == 1

    def test_coordinates_parsed(self, tmp_path):
        path = _write_sample(
            tmp_path / "a.txt",
            [_ROW.format(user="u", venue="v", lat="35.61", lon="139.72", sec=1)],
        )
        checkin = load_foursquare_tsv(path)[0]
        assert checkin.latitude == pytest.approx(35.61)
        assert checkin.longitude == pytest.approx(139.72)

    def test_timestamps_ordered(self, tmp_path):
        rows = [
            _ROW.format(user="u", venue="v", lat="35.6", lon="139.7", sec=i)
            for i in range(1, 4)
        ]
        path = _write_sample(tmp_path / "a.txt", rows)
        checkins = load_foursquare_tsv(path)
        timestamps = [c.timestamp for c in checkins]
        assert timestamps == sorted(timestamps)

    def test_epoch_timestamps_accepted(self, tmp_path):
        path = _write_sample(
            tmp_path / "a.txt",
            ["u\tv\tc\tBar\t35.6\t139.7\t540\t1333475000.0\n"],
        )
        assert load_foursquare_tsv(path)[0].timestamp == pytest.approx(1333475000.0)

    def test_max_rows(self, tmp_path):
        rows = [
            _ROW.format(user=f"u{i}", venue="v", lat="35.6", lon="139.7", sec=1)
            for i in range(5)
        ]
        path = _write_sample(tmp_path / "a.txt", rows)
        assert len(load_foursquare_tsv(path, max_rows=2)) == 2

    def test_missing_file(self, tmp_path):
        with pytest.raises(DataError):
            load_foursquare_tsv(tmp_path / "nope.txt")

    def test_malformed_row(self, tmp_path):
        path = _write_sample(tmp_path / "a.txt", ["too\tfew\tfields\n"])
        with pytest.raises(DataError):
            load_foursquare_tsv(path)

    def test_empty_file(self, tmp_path):
        path = _write_sample(tmp_path / "a.txt", [])
        with pytest.raises(DataError):
            load_foursquare_tsv(path)

    def test_bad_coordinates(self, tmp_path):
        path = _write_sample(
            tmp_path / "a.txt",
            ["u\tv\tc\tBar\tnot-a-number\t139.7\t540\t1333475000.0\n"],
        )
        with pytest.raises(DataError):
            load_foursquare_tsv(path)
