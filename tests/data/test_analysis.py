"""Tests for dataset analysis utilities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.analysis import (
    location_coverage_per_user,
    location_frequency_zipf_fit,
    session_summary,
    user_activity_summary,
)
from repro.data.checkins import CheckinDataset
from repro.exceptions import DataError
from repro.types import CheckIn


def _zipf_dataset(exponent: float, num_locations: int = 60) -> CheckinDataset:
    """Synthesize check-ins whose location frequencies are exactly Zipf."""
    checkins = []
    t = 0.0
    for rank in range(1, num_locations + 1):
        count = max(1, int(round(1000.0 * rank ** (-exponent))))
        for _ in range(count):
            checkins.append(CheckIn(user=rank % 7, location=rank - 1, timestamp=t))
            t += 1.0
    return CheckinDataset(checkins)


class TestZipfFit:
    def test_recovers_exponent(self):
        for true_exponent in (0.8, 1.0, 1.2):
            fit = location_frequency_zipf_fit(_zipf_dataset(true_exponent))
            assert fit.exponent == pytest.approx(true_exponent, abs=0.15)
            assert fit.r_squared > 0.95

    def test_synthetic_workload_is_zipfian(self, small_dataset):
        fit = location_frequency_zipf_fit(small_dataset)
        # The generator draws popularity from Zipf(1.0); preprocessing and
        # user preference mixing flatten it somewhat.
        assert 0.2 < fit.exponent < 2.0
        assert fit.num_items == small_dataset.num_locations

    def test_too_few_locations(self):
        checkins = [CheckIn(user=0, location=0, timestamp=0.0),
                    CheckIn(user=1, location=1, timestamp=1.0)]
        with pytest.raises(DataError):
            location_frequency_zipf_fit(CheckinDataset(checkins))


class TestActivitySummary:
    def test_percentile_ordering(self, small_dataset):
        summary = user_activity_summary(small_dataset)
        assert summary.p10 <= summary.p50 <= summary.p90 <= summary.p99
        assert summary.mean > 0
        assert summary.tail_ratio >= 1.0

    def test_uniform_counts(self):
        checkins = [
            CheckIn(user=u, location=i, timestamp=float(i))
            for u in range(5)
            for i in range(4)
        ]
        summary = user_activity_summary(CheckinDataset(checkins))
        assert summary.p10 == summary.p99 == 4.0
        assert summary.tail_ratio == 1.0


class TestSessionSummary:
    def test_fields(self, small_dataset):
        summary = session_summary(small_dataset)
        assert summary.num_sessions > 0
        assert 1.0 <= summary.mean_length <= summary.max_length
        assert summary.mean_duration_minutes < 6 * 60
        assert 0.0 <= summary.repeat_visit_rate < 0.2

    def test_single_user_sessions(self):
        checkins = [
            CheckIn(user=0, location=i, timestamp=i * 3600.0) for i in range(4)
        ]
        summary = session_summary(CheckinDataset(checkins))
        # 4 check-ins at 1-hour spacing: first 4 hours fit in one 6h window
        # only until duration exceeds 6h from the session start.
        assert summary.num_sessions >= 1
        assert summary.max_length <= 4


class TestCoverage:
    def test_range(self, small_dataset):
        coverage = location_coverage_per_user(small_dataset)
        assert 0.0 < coverage < 1.0

    def test_full_coverage(self):
        checkins = [
            CheckIn(user=0, location=i, timestamp=float(i)) for i in range(3)
        ]
        assert location_coverage_per_user(CheckinDataset(checkins)) == 1.0
