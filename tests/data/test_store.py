"""Tests for the corpus-store layer (repro.data.store).

Covers the CheckinStore protocol, the memory-mapped sharded store and its
writer, open_corpus normalization, and the synthetic materializers'
bit-parity with the in-memory generator.
"""

import numpy as np
import pytest

from repro.data.checkins import CheckinDataset
from repro.data.store import (
    CheckinStore,
    InMemoryCheckinStore,
    ShardedCheckinStore,
    ShardedStoreWriter,
    open_corpus,
    write_sharded_store,
)
from repro.data.synthetic import (
    SyntheticConfig,
    generate_checkins,
    materialize_synthetic_store,
)
from repro.exceptions import DataError


@pytest.fixture(scope="module")
def dataset():
    config = SyntheticConfig(num_users=40, num_locations=50, num_clusters=5)
    return CheckinDataset(generate_checkins(config, rng=11))


@pytest.fixture()
def store_dir(tmp_path, dataset):
    path = tmp_path / "corpus"
    write_sharded_store(path, dataset, users_per_shard=16)
    return path


class TestInMemoryStore:
    def test_protocol_views(self, dataset):
        store = InMemoryCheckinStore(dataset)
        assert isinstance(store, CheckinStore)
        assert store.num_users == dataset.num_users
        assert store.num_checkins == dataset.num_checkins
        assert store.num_locations == dataset.num_locations
        assert list(store.users) == list(dataset.users)
        assert len(store) == dataset.num_users
        user = dataset.users[0]
        assert user in store
        assert store.history(user) == dataset.history(user)
        assert store.stats() == dataset.stats()

    def test_to_dataset_is_identity(self, dataset):
        store = InMemoryCheckinStore(dataset)
        assert store.to_dataset() is dataset

    def test_describe(self, dataset):
        described = InMemoryCheckinStore(dataset).describe()
        assert described["kind"] == "memory"
        assert described["num_users"] == dataset.num_users


class TestShardedStoreRoundTrip:
    def test_histories_round_trip_exactly(self, store_dir, dataset):
        with ShardedCheckinStore(store_dir) as store:
            assert sorted(store.users) == sorted(dataset.users)
            for user in dataset.users:
                assert store.history(user) == dataset.history(user)

    def test_stats_match_dataset(self, store_dir, dataset):
        with ShardedCheckinStore(store_dir) as store:
            assert store.stats() == dataset.stats()

    def test_multiple_shards_written(self, store_dir):
        shards = sorted(store_dir.glob("shard_*.npy"))
        assert len(shards) == 3  # 40 users / 16 per shard

    def test_lazy_shard_cache_is_bounded(self, store_dir, dataset):
        with ShardedCheckinStore(store_dir, max_open_shards=1) as store:
            for user in dataset.users:
                store.history(user)
            assert len(store._open_shards) <= 1

    def test_describe_and_dunder_views(self, store_dir, dataset):
        with ShardedCheckinStore(store_dir) as store:
            described = store.describe()
            assert described["kind"] == "sharded"
            assert described["num_shards"] == 3
            assert len(store) == dataset.num_users
            assert dataset.users[0] in store
            assert -1 not in store

    def test_unknown_user_raises(self, store_dir):
        with ShardedCheckinStore(store_dir) as store:
            with pytest.raises(DataError, match="unknown user"):
                store.history(10**9)

    def test_to_dataset_materializes(self, store_dir, dataset):
        with ShardedCheckinStore(store_dir) as store:
            materialized = store.to_dataset()
        assert materialized.num_checkins == dataset.num_checkins


class TestWriter:
    def test_refuses_existing_store(self, store_dir, dataset):
        with pytest.raises(DataError, match="refusing to overwrite"):
            write_sharded_store(store_dir, dataset)

    def test_rejects_duplicate_user(self, tmp_path):
        writer = ShardedStoreWriter(tmp_path / "dup")
        writer.append(1, [5, 6], [0.0, 1.0])
        with pytest.raises(DataError, match="duplicate"):
            writer.append(1, [7], [2.0])

    def test_rejects_empty_history(self, tmp_path):
        writer = ShardedStoreWriter(tmp_path / "empty")
        with pytest.raises(DataError):
            writer.append(1, [], [])

    def test_rejects_length_mismatch(self, tmp_path):
        writer = ShardedStoreWriter(tmp_path / "mismatch")
        with pytest.raises(DataError):
            writer.append(1, [5, 6], [0.0])

    def test_corrupt_manifest_rejected(self, store_dir):
        (store_dir / "manifest.json").write_text('{"format": "something-else"}')
        with pytest.raises(DataError):
            ShardedCheckinStore(store_dir)


class TestOpenCorpus:
    def test_store_passes_through(self, dataset):
        store = InMemoryCheckinStore(dataset)
        assert open_corpus(store) is store

    def test_dataset_wrapped(self, dataset):
        store = open_corpus(dataset)
        assert isinstance(store, InMemoryCheckinStore)
        assert store.to_dataset() is dataset

    def test_checkin_iterable_wrapped(self, dataset):
        store = open_corpus(dataset.all_checkins())
        assert store.num_users == dataset.num_users

    def test_directory_opens_sharded(self, store_dir, dataset):
        with open_corpus(str(store_dir)) as store:
            assert isinstance(store, ShardedCheckinStore)
            assert store.num_users == dataset.num_users

    def test_csv_loads_in_memory(self, tmp_path, dataset):
        from repro.data.io import save_checkins_csv

        path = tmp_path / "checkins.csv"
        save_checkins_csv(path, dataset.all_checkins())
        store = open_corpus(str(path))
        assert isinstance(store, InMemoryCheckinStore)
        assert store.num_users == dataset.num_users

    def test_missing_path_rejected(self, tmp_path):
        with pytest.raises(DataError, match="corpus not found"):
            open_corpus(str(tmp_path / "nope"))

    def test_unsupported_type_rejected(self):
        with pytest.raises(DataError):
            open_corpus(42)


class TestSyntheticMaterialization:
    def test_session_profile_bit_identical_to_generator(self, tmp_path):
        config = SyntheticConfig(num_users=25, num_locations=40, num_clusters=4)
        reference = CheckinDataset(generate_checkins(config, rng=3))
        with materialize_synthetic_store(
            config, path=tmp_path / "s", rng=3, users_per_shard=10
        ) as store:
            assert sorted(store.users) == sorted(reference.users)
            for user in reference.users:
                assert store.history(user) == reference.history(user)
            assert store.stats() == reference.stats()

    def test_bulk_profile_is_valid_and_deterministic(self, tmp_path):
        config = SyntheticConfig(num_users=30, num_locations=40, num_clusters=4)
        with materialize_synthetic_store(
            config, path=tmp_path / "a", rng=5, profile="bulk", users_per_shard=8
        ) as first, materialize_synthetic_store(
            config, path=tmp_path / "b", rng=5, profile="bulk", users_per_shard=8
        ) as second:
            assert first.num_users == 30
            assert first.num_checkins == second.num_checkins
            for user in first.users:
                history = first.history(user)
                assert history == second.history(user)
                times = [checkin.timestamp for checkin in history.checkins]
                assert times == sorted(times)

    def test_unknown_profile_rejected(self, tmp_path):
        from repro.exceptions import ConfigError

        with pytest.raises(ConfigError, match="profile"):
            materialize_synthetic_store(
                SyntheticConfig(num_users=4), path=tmp_path / "x", profile="stream"
            )


class TestTrainingFromStore:
    def test_trainer_accepts_store_path_and_records_provenance(
        self, store_dir, dataset
    ):
        from repro.core.config import PLPConfig
        from repro.core.trainer import PrivateLocationPredictor

        config = PLPConfig(max_steps=2, sampling_probability=0.5, embedding_dim=8)
        from_path = PrivateLocationPredictor(config, rng=9)
        from_path.fit(str(store_dir))
        assert from_path.corpus_source is not None
        assert from_path.corpus_source["kind"] == "sharded"

        in_memory = PrivateLocationPredictor(config, rng=9)
        in_memory.fit(dataset)
        assert in_memory.corpus_source is not None
        assert in_memory.corpus_source["kind"] == "memory"
        np.testing.assert_array_equal(
            from_path.model.params["W"], in_memory.model.params["W"]
        )
