"""Tests for holdout splitting and 6-hour sessionization."""

from __future__ import annotations

import pytest

from repro.data.splitting import (
    SIX_HOURS_SECONDS,
    holdout_users_split,
    sessionize,
    sessionize_dataset,
)
from repro.exceptions import DataError
from repro.types import CheckIn, UserHistory


def _history(user: int, times: list[float]) -> UserHistory:
    history = UserHistory(user=user)
    for i, t in enumerate(times):
        history.add(CheckIn(user=user, location=i, timestamp=t))
    return history


class TestSessionize:
    def test_single_session_within_six_hours(self):
        history = _history(1, [0.0, 3600.0, 7200.0])
        trajectories = sessionize(history)
        assert len(trajectories) == 1
        assert trajectories[0].locations == (0, 1, 2)

    def test_splits_on_duration(self):
        history = _history(1, [0.0, 3600.0, SIX_HOURS_SECONDS + 3600.0])
        trajectories = sessionize(history)
        assert len(trajectories) == 2
        assert trajectories[0].locations == (0, 1)
        assert trajectories[1].locations == (2,)

    def test_duration_is_measured_from_trajectory_start(self):
        # Check-ins every 4 hours: each pair fits in 6h, but the third is
        # 8h after the first -> split after two.
        hours = 3600.0
        history = _history(1, [0.0, 4 * hours, 8 * hours, 12 * hours])
        trajectories = sessionize(history)
        assert [len(t) for t in trajectories] == [2, 2]

    def test_every_trajectory_within_bound(self):
        history = _history(1, [float(i) * 7000.0 for i in range(20)])
        for trajectory in sessionize(history):
            assert trajectory.duration <= SIX_HOURS_SECONDS

    def test_empty_history(self):
        assert sessionize(UserHistory(user=1)) == []

    def test_bad_bound_rejected(self):
        with pytest.raises(DataError):
            sessionize(_history(1, [0.0]), max_duration_seconds=0.0)


class TestSessionizeDataset:
    def test_min_length_filter(self, small_dataset):
        trajectories = sessionize_dataset(small_dataset, min_length=2)
        assert all(len(t) >= 2 for t in trajectories)

    def test_preserves_user_attribution(self, small_dataset):
        trajectories = sessionize_dataset(small_dataset)
        users = {t.user for t in trajectories}
        assert users <= set(small_dataset.users)

    def test_checkin_conservation(self, small_dataset):
        # With min_length=1, sessionization is a partition of all check-ins.
        trajectories = sessionize_dataset(small_dataset, min_length=1)
        assert sum(len(t) for t in trajectories) == small_dataset.num_checkins

    def test_bad_min_length(self, small_dataset):
        with pytest.raises(DataError):
            sessionize_dataset(small_dataset, min_length=0)


class TestHoldoutSplit:
    def test_disjoint_and_complete(self, small_dataset):
        train, holdout = holdout_users_split(small_dataset, 10, rng=1)
        train_users = set(train.users)
        holdout_users = set(holdout.users)
        assert not train_users & holdout_users
        assert train_users | holdout_users == set(small_dataset.users)
        assert len(holdout_users) == 10

    def test_checkins_conserved(self, small_dataset):
        train, holdout = holdout_users_split(small_dataset, 10, rng=1)
        assert (
            train.num_checkins + holdout.num_checkins == small_dataset.num_checkins
        )

    def test_deterministic(self, small_dataset):
        _, holdout_a = holdout_users_split(small_dataset, 10, rng=9)
        _, holdout_b = holdout_users_split(small_dataset, 10, rng=9)
        assert set(holdout_a.users) == set(holdout_b.users)

    def test_invalid_sizes_rejected(self, small_dataset):
        with pytest.raises(DataError):
            holdout_users_split(small_dataset, 0)
        with pytest.raises(DataError):
            holdout_users_split(small_dataset, small_dataset.num_users)
