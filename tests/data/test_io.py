"""Tests for CSV check-in interchange."""

from __future__ import annotations

import math

import pytest

from repro.data.io import load_checkins_csv, save_checkins_csv
from repro.exceptions import DataError
from repro.types import CheckIn


class TestRoundTrip:
    def test_preserves_records(self, tmp_path):
        checkins = [
            CheckIn(user=1, location=7, timestamp=100.5, latitude=35.6, longitude=139.7),
            CheckIn(user=2, location=8, timestamp=200.25),
        ]
        path = tmp_path / "c.csv"
        assert save_checkins_csv(path, checkins) == 2
        loaded = load_checkins_csv(path)
        assert loaded[0] == checkins[0]
        assert loaded[1].user == 2
        assert math.isnan(loaded[1].latitude)

    def test_timestamp_precision(self, tmp_path):
        checkin = CheckIn(user=1, location=1, timestamp=1333475000.123456)
        path = tmp_path / "c.csv"
        save_checkins_csv(path, [checkin])
        assert load_checkins_csv(path)[0].timestamp == checkin.timestamp

    def test_synthetic_round_trip(self, tmp_path, small_checkins):
        path = tmp_path / "synthetic.csv"
        save_checkins_csv(path, small_checkins)
        loaded = load_checkins_csv(path)
        assert loaded == small_checkins

    def test_creates_directories(self, tmp_path):
        path = tmp_path / "a" / "b" / "c.csv"
        save_checkins_csv(path, [CheckIn(user=1, location=1, timestamp=0.0)])
        assert path.exists()


class TestValidation:
    def test_missing_file(self, tmp_path):
        with pytest.raises(DataError):
            load_checkins_csv(tmp_path / "nope.csv")

    def test_wrong_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,c\n1,2,3\n", encoding="utf-8")
        with pytest.raises(DataError):
            load_checkins_csv(path)

    def test_malformed_row(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text(
            "user,location,timestamp,latitude,longitude\nx,2,3.0,,\n",
            encoding="utf-8",
        )
        with pytest.raises(DataError):
            load_checkins_csv(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("user,location,timestamp,latitude,longitude\n", encoding="utf-8")
        with pytest.raises(DataError):
            load_checkins_csv(path)
