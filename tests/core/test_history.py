"""Tests for TrainingHistory records."""

from __future__ import annotations

import pytest

from repro.core.history import EvalRecord, StepRecord, TrainingHistory


def _record(step: int, loss: float = 1.0, epsilon: float = 0.1) -> StepRecord:
    return StepRecord(
        step=step,
        mean_loss=loss,
        epsilon_spent=epsilon,
        num_sampled_users=10,
        num_buckets=3,
        mean_unclipped_norm=0.2,
        wall_time_seconds=0.5,
    )


class TestTrainingHistory:
    def test_empty(self):
        history = TrainingHistory()
        assert len(history) == 0
        assert history.final_epsilon == 0.0
        assert history.total_wall_time == 0.0
        assert history.losses() == []

    def test_accumulates(self):
        history = TrainingHistory()
        history.record_step(_record(1, loss=3.0, epsilon=0.1))
        history.record_step(_record(2, loss=2.0, epsilon=0.2))
        assert len(history) == 2
        assert history.final_epsilon == 0.2
        assert history.losses() == [3.0, 2.0]
        assert history.epsilons() == [0.1, 0.2]
        assert history.total_wall_time == pytest.approx(1.0)

    def test_iteration(self):
        history = TrainingHistory()
        history.record_step(_record(1))
        assert [record.step for record in history] == [1]

    def test_evaluations(self):
        history = TrainingHistory()
        history.record_evaluation(5, {"HR@10": 0.2})
        assert history.evaluations == [EvalRecord(step=5, metrics={"HR@10": 0.2})]

    def test_evaluation_metrics_copied(self):
        history = TrainingHistory()
        metrics = {"HR@10": 0.2}
        history.record_evaluation(1, metrics)
        metrics["HR@10"] = 0.9
        assert history.evaluations[0].metrics["HR@10"] == 0.2

    def test_as_rows(self):
        history = TrainingHistory()
        history.record_step(_record(1, loss=3.0))
        rows = history.as_rows()
        assert rows[0]["step"] == 1
        assert rows[0]["loss"] == 3.0
        assert rows[0]["buckets"] == 3
