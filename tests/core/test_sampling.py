"""Tests for Poisson user sampling."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sampling import expected_sample_size, poisson_sample
from repro.exceptions import ConfigError


class TestPoissonSample:
    def test_probability_zero_empty(self):
        assert poisson_sample(list(range(100)), 0.0, rng=0) == []

    def test_probability_one_everything(self):
        population = list(range(50))
        assert poisson_sample(population, 1.0, rng=0) == population

    def test_preserves_order(self):
        sample = poisson_sample(list(range(1000)), 0.3, rng=1)
        assert sample == sorted(sample)

    def test_mean_sample_size(self):
        rng = np.random.default_rng(2)
        sizes = [len(poisson_sample(list(range(500)), 0.06, rng)) for _ in range(400)]
        assert np.mean(sizes) == pytest.approx(30.0, rel=0.1)

    def test_size_varies(self):
        # Poisson (Bernoulli-per-element) sampling: size is random, not fixed.
        rng = np.random.default_rng(3)
        sizes = {len(poisson_sample(list(range(500)), 0.1, rng)) for _ in range(50)}
        assert len(sizes) > 1

    def test_invalid_probability(self):
        with pytest.raises(ConfigError):
            poisson_sample([1], -0.1)
        with pytest.raises(ConfigError):
            poisson_sample([1], 1.1)

    @given(prob=st.floats(0.0, 1.0), seed=st.integers(0, 10_000))
    @settings(max_examples=50, deadline=None)
    def test_sample_is_subset(self, prob, seed):
        population = list(range(40))
        sample = poisson_sample(population, prob, rng=seed)
        assert set(sample) <= set(population)
        assert len(set(sample)) == len(sample)


class TestExpectedSampleSize:
    def test_value(self):
        assert expected_sample_size(4502, 0.06) == pytest.approx(270.12)

    def test_invalid(self):
        with pytest.raises(ConfigError):
            expected_sample_size(-1, 0.5)
        with pytest.raises(ConfigError):
            expected_sample_size(10, 2.0)
