"""Tests for the layered training engine: executors, observers, pipeline."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.config import PLPConfig
from repro.core.bucket import model_update_from_bucket
from repro.core.engine import (
    BucketJob,
    CheckpointObserver,
    JsonlMetricsObserver,
    LocalTrainSpec,
    ParallelExecutor,
    SerialExecutor,
    Observer,
    make_executor,
)
from repro.core.trainer import PrivateLocationPredictor
from repro.exceptions import ConfigError, ExecutorError
from repro.models.serialization import load_training_checkpoint
from repro.models.skipgram import SkipGramModel
from repro.privacy.accountant import PrivacyLedger
from repro.rng import derive_seed_sequence


def _fast_config(**overrides) -> PLPConfig:
    base = dict(
        embedding_dim=8,
        num_negatives=4,
        sampling_probability=0.2,
        noise_multiplier=2.0,
        epsilon=50.0,
        grouping_factor=3,
        max_steps=12,
    )
    base.update(overrides)
    return PLPConfig(**base)


def _deterministic_fields(history):
    return [
        (
            record.step,
            record.mean_loss,
            record.epsilon_spent,
            record.num_sampled_users,
            record.num_buckets,
            record.mean_unclipped_norm,
        )
        for record in history
    ]


class _CaptureObserver(Observer):
    """Collects step results and bucket callbacks for assertions."""

    def __init__(self) -> None:
        self.results = []
        self.bucket_calls = 0
        self.stop_reason = None

    def on_bucket_done(self, context, step, update):
        self.bucket_calls += 1

    def on_step_end(self, context, result):
        self.results.append(result)

    def on_stop(self, context, reason):
        self.stop_reason = reason


class TestSerialParallelEquivalence:
    def test_bit_identical_history_and_parameters(self, split_dataset):
        train, _ = split_dataset
        config = _fast_config(max_steps=3)
        serial = PrivateLocationPredictor(config, rng=11, executor="serial")
        history_serial = serial.fit(train)
        parallel = PrivateLocationPredictor(
            config, rng=11, executor="parallel", workers=2
        )
        history_parallel = parallel.fit(train)

        # Final parameters (hence embeddings) must match to the last bit.
        for name in serial.model.params.names():
            assert np.array_equal(
                serial.model.params[name], parallel.model.params[name]
            ), name
        # Every deterministic history field matches exactly (wall time is
        # the one field that legitimately differs between backends).
        assert _deterministic_fields(history_serial) == _deterministic_fields(
            history_parallel
        )
        assert history_serial.stop_reason == history_parallel.stop_reason

    def test_parallel_budget_stop_matches_serial(self, split_dataset):
        train, _ = split_dataset
        config = _fast_config(
            epsilon=0.5, max_steps=None, noise_multiplier=2.0, sampling_probability=0.1
        )
        serial = PrivateLocationPredictor(config, rng=3, executor="serial")
        history_serial = serial.fit(train)
        parallel = PrivateLocationPredictor(
            config, rng=3, executor="parallel", workers=2
        )
        history_parallel = parallel.fit(train)
        assert history_serial.stop_reason == "budget_exhausted"
        assert _deterministic_fields(history_serial) == _deterministic_fields(
            history_parallel
        )
        for name in serial.model.params.names():
            assert np.array_equal(
                serial.model.params[name], parallel.model.params[name]
            ), name


def _failing_step_inputs():
    model = SkipGramModel(num_locations=20, embedding_dim=4, num_negatives=2, rng=0)
    # An invalid clipping mode raises ConfigError inside the bucket job —
    # a picklable failure that also reproduces in worker processes.
    spec = LocalTrainSpec(
        model=model,
        batch_size=4,
        learning_rate=0.1,
        clip_bound=0.5,
        clipping="bogus",
        local_update="sgd",
    )
    jobs = [
        BucketJob(
            index=index,
            pairs=np.array([[1, 2], [3, 4], [5, 6]]),
            seed=derive_seed_sequence(0, 1, index),
        )
        for index in range(3)
    ]
    return spec, jobs


class TestExecutorFailure:
    def test_serial_wraps_job_failure(self):
        spec, jobs = _failing_step_inputs()
        with pytest.raises(ExecutorError) as excinfo:
            SerialExecutor().run_step(spec, jobs)
        assert isinstance(excinfo.value.__cause__, ConfigError)

    def test_parallel_raises_executor_error_without_hanging(self):
        spec, jobs = _failing_step_inputs()
        with ParallelExecutor(max_workers=2) as executor:
            with pytest.raises(ExecutorError) as excinfo:
                executor.run_step(spec, jobs)
        assert isinstance(excinfo.value.__cause__, ConfigError)

    def test_parallel_pool_survives_job_failure(self):
        spec, jobs = _failing_step_inputs()
        good_spec = LocalTrainSpec(
            model=spec.model,
            batch_size=4,
            learning_rate=0.1,
            clip_bound=0.5,
            clipping="per_layer",
            local_update="sgd",
        )
        with ParallelExecutor(max_workers=2) as executor:
            with pytest.raises(ExecutorError):
                executor.run_step(spec, jobs)
            updates = executor.run_step(good_spec, jobs)
        assert len(updates) == len(jobs)

    def test_empty_step_returns_no_updates(self):
        spec, _ = _failing_step_inputs()
        with ParallelExecutor(max_workers=2) as executor:
            assert executor.run_step(spec, []) == []


class TestMakeExecutor:
    def test_serial_default(self):
        executor, owned = make_executor(None)
        assert isinstance(executor, SerialExecutor)
        assert owned

    def test_instance_passthrough_not_owned(self):
        instance = SerialExecutor()
        executor, owned = make_executor(instance)
        assert executor is instance
        assert not owned

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            make_executor("threads")

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ConfigError):
            ParallelExecutor(max_workers=0)


class TestSnapshotPolicy:
    def test_snapshot_taken_only_on_crossing_step(self, split_dataset):
        train, _ = split_dataset
        config = _fast_config(
            epsilon=0.5, max_steps=None, noise_multiplier=2.0, sampling_probability=0.1
        )
        capture = _CaptureObserver()
        trainer = PrivateLocationPredictor(config, rng=0, observers=[capture])
        history = trainer.fit(train)
        assert history.stop_reason == "budget_exhausted"
        flags = [result.apply.snapshot_taken for result in capture.results]
        # Only the (single, final) budget-crossing step pays the full
        # parameter copy; every earlier step skips it.
        assert flags[-1] is True
        assert not any(flags[:-1])

    def test_no_snapshot_under_max_steps_stop(self, split_dataset):
        train, _ = split_dataset
        capture = _CaptureObserver()
        trainer = PrivateLocationPredictor(
            _fast_config(max_steps=4), rng=0, observers=[capture]
        )
        trainer.fit(train)
        assert not any(result.apply.snapshot_taken for result in capture.results)
        assert capture.stop_reason == "max_steps"

    def test_bucket_callbacks_cover_every_bucket(self, split_dataset):
        train, _ = split_dataset
        capture = _CaptureObserver()
        trainer = PrivateLocationPredictor(
            _fast_config(max_steps=3), rng=0, observers=[capture]
        )
        history = trainer.fit(train)
        assert capture.bucket_calls == sum(record.num_buckets for record in history)


class TestLedgerPreview:
    def test_preview_matches_recorded_spend_bitwise(self):
        ledger = PrivacyLedger(delta=2e-4, sampling_probability=0.06)
        for _ in range(5):
            preview = ledger.preview_budget_spent(2.5)
            ledger.track_budget(0.5, 2.5)
            assert ledger.cumulative_budget_spent() == preview

    def test_preview_does_not_record(self):
        ledger = PrivacyLedger(delta=2e-4, sampling_probability=0.06)
        ledger.preview_budget_spent(2.5)
        assert len(ledger) == 0
        assert ledger.cumulative_budget_spent() == 0.0


class TestWorkerSafeBucket:
    def test_theta_is_read_only(self):
        model = SkipGramModel(
            num_locations=30, embedding_dim=6, num_negatives=3, rng=1
        )
        before = {
            name: model.params[name].copy() for name in model.params.names()
        }
        rng = np.random.default_rng(7)
        pairs = rng.integers(0, 30, size=(24, 2))
        update = model_update_from_bucket(
            model,
            model.params,
            pairs,
            batch_size=8,
            learning_rate=0.1,
            clip_bound=0.5,
            rng=rng,
        )
        for name, tensor in before.items():
            assert np.array_equal(model.params[name], tensor), name
        assert update.num_batches == 3
        assert update.unclipped_norm > 0.0


class TestJsonlMetrics:
    def test_stream_and_stop_events(self, split_dataset, tmp_path):
        train, _ = split_dataset
        path = tmp_path / "metrics.jsonl"
        trainer = PrivateLocationPredictor(
            _fast_config(max_steps=3), rng=0, observers=[JsonlMetricsObserver(path)]
        )
        history = trainer.fit(train)
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        steps = [line for line in lines if line["event"] == "step"]
        stops = [line for line in lines if line["event"] == "stop"]
        assert [line["step"] for line in steps] == [1, 2, 3]
        assert steps[0]["epsilon_spent"] == history.steps[0].epsilon_spent
        assert stops == [{"event": "stop", "reason": "max_steps", "steps": 3}]


class TestCheckpointObserver:
    def test_round_trip_restores_theta_and_ledger(self, split_dataset, tmp_path):
        train, _ = split_dataset
        path = tmp_path / "checkpoint.npz"
        trainer = PrivateLocationPredictor(
            _fast_config(max_steps=4), rng=0, observers=[CheckpointObserver(path)]
        )
        history = trainer.fit(train)

        checkpoint = load_training_checkpoint(path)
        assert checkpoint.step == len(history) == 4
        for name in trainer.model.params.names():
            assert np.array_equal(
                checkpoint.parameters[name], trainer.model.params[name]
            ), name
        restored = checkpoint.restore_ledger()
        assert len(restored) == len(trainer.ledger)
        assert restored.cumulative_budget_spent() == pytest.approx(
            trainer.ledger.cumulative_budget_spent()
        )
        fresh = trainer.model.params.zeros_like()
        checkpoint.restore_parameters(fresh)
        assert fresh.allclose(trainer.model.params)

    def test_final_checkpoint_holds_rolled_back_parameters(
        self, split_dataset, tmp_path
    ):
        train, _ = split_dataset
        path = tmp_path / "checkpoint.npz"
        config = _fast_config(
            epsilon=0.5, max_steps=None, noise_multiplier=2.0, sampling_probability=0.1
        )
        trainer = PrivateLocationPredictor(
            config, rng=3, observers=[CheckpointObserver(path, every=1000)]
        )
        history = trainer.fit(train)
        assert history.stop_reason == "budget_exhausted"
        checkpoint = load_training_checkpoint(path)
        # Saved after rollback: the stored theta is what the caller gets.
        for name in trainer.model.params.names():
            assert np.array_equal(
                checkpoint.parameters[name], trainer.model.params[name]
            ), name
        # The ledger still records the crossing step's spend.
        assert len(checkpoint.ledger_entries) == len(history)
