"""Tests for PLPConfig validation."""

from __future__ import annotations

import pytest

from repro.core.config import PLPConfig
from repro.exceptions import ConfigError


class TestDefaults:
    def test_paper_defaults(self):
        config = PLPConfig()
        assert config.embedding_dim == 50
        assert config.num_negatives == 16
        assert config.window == 2
        assert config.batch_size == 32
        assert config.learning_rate == pytest.approx(0.06)
        assert config.grouping_factor == 4
        assert config.sampling_probability == pytest.approx(0.06)
        assert config.clip_bound == pytest.approx(0.5)
        assert config.noise_multiplier == pytest.approx(2.5)
        assert config.delta == pytest.approx(2e-4)
        assert config.split_factor == 1

    def test_steps_per_epoch(self):
        assert PLPConfig(sampling_probability=0.06).steps_per_epoch() == 17
        assert PLPConfig(sampling_probability=0.5).steps_per_epoch() == 2


class TestValidation:
    @pytest.mark.parametrize(
        "field,value",
        [
            ("embedding_dim", 0),
            ("num_negatives", 0),
            ("window", 0),
            ("loss", "hinge"),
            ("negative_sharing", "sometimes"),
            ("batch_size", 0),
            ("learning_rate", 0.0),
            ("local_update", "magic"),
            ("grouping_factor", 0),
            ("grouping_strategy", "sorted"),
            ("sampling_probability", 0.0),
            ("sampling_probability", 1.5),
            ("clip_bound", 0.0),
            ("clipping", "l1"),
            ("noise_multiplier", -1.0),
            ("split_factor", 0),
            ("epsilon", 0.0),
            ("delta", 1.0),
            ("server_optimizer", "lbfgs"),
            ("server_learning_rate", 0.0),
            ("max_steps", 0),
            ("eval_every", 0),
        ],
    )
    def test_rejects_invalid(self, field, value):
        with pytest.raises(ConfigError):
            PLPConfig(**{field: value})

    def test_frozen(self):
        config = PLPConfig()
        with pytest.raises(AttributeError):
            config.epsilon = 5.0  # type: ignore[misc]


class TestOverrides:
    def test_with_overrides(self):
        config = PLPConfig().with_overrides(grouping_factor=6, epsilon=1.0)
        assert config.grouping_factor == 6
        assert config.epsilon == 1.0
        # Untouched fields preserved.
        assert config.batch_size == 32

    def test_overrides_revalidate(self):
        with pytest.raises(ConfigError):
            PLPConfig().with_overrides(grouping_factor=-1)
