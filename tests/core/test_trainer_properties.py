"""Property-based invariants of the PLP trainer (hypothesis)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import PLPConfig
from repro.core.grouping import group_data
from repro.core.trainer import PrivateLocationPredictor
from repro.data.checkins import CheckinDataset
from repro.types import CheckIn


def _tiny_dataset(seed: int) -> CheckinDataset:
    rng = np.random.default_rng(seed)
    checkins = []
    for user in range(12):
        t = 0.0
        for _ in range(8):
            checkins.append(
                CheckIn(user=user, location=int(rng.integers(0, 10)), timestamp=t)
            )
            t += 600.0
    return CheckinDataset(checkins)


class TestTrainerInvariants:
    @given(
        max_steps=st.integers(1, 4),
        grouping_factor=st.integers(1, 6),
        clip_bound=st.floats(0.05, 2.0),
        seed=st.integers(0, 50),
    )
    @settings(max_examples=12, deadline=None)
    def test_steps_ledger_history_agree(
        self, max_steps, grouping_factor, clip_bound, seed
    ):
        config = PLPConfig(
            embedding_dim=4,
            num_negatives=2,
            sampling_probability=0.5,
            grouping_factor=grouping_factor,
            clip_bound=clip_bound,
            noise_multiplier=1.0,
            epsilon=1e6,
            max_steps=max_steps,
        )
        trainer = PrivateLocationPredictor(config, rng=seed)
        history = trainer.fit(_tiny_dataset(seed))
        assert len(history) == max_steps
        assert len(trainer.ledger) == max_steps
        # Epsilon strictly increases step over step.
        epsilons = history.epsilons()
        assert all(a < b for a, b in zip(epsilons, epsilons[1:]))
        # Parameters remain finite whatever the configuration.
        for name in trainer.model.params.names():
            assert np.all(np.isfinite(trainer.model.params[name]))

    @given(
        grouping_factor=st.integers(1, 6),
        split_factor=st.integers(1, 3),
        strategy=st.sampled_from(["random", "equal_frequency"]),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=40, deadline=None)
    def test_group_data_conserves_pairs(
        self, grouping_factor, split_factor, strategy, seed
    ):
        rng = np.random.default_rng(seed)
        user_pairs = {
            user: rng.integers(0, 20, size=(int(rng.integers(0, 15)), 2)).astype(
                np.int64
            )
            for user in range(int(rng.integers(1, 10)))
        }
        buckets = group_data(
            user_pairs,
            grouping_factor=grouping_factor,
            split_factor=split_factor,
            strategy=strategy,
            rng=seed,
        )
        total_out = sum(bucket.shape[0] for bucket in buckets)
        total_in = sum(pairs.shape[0] for pairs in user_pairs.values())
        assert total_out == total_in

    @given(seed=st.integers(0, 30))
    @settings(max_examples=8, deadline=None)
    def test_rollback_restores_previous_model_exactly(self, seed):
        # Budget-exhausted stop must return theta_{t-1}: training one step
        # fewer with the same seed yields identical parameters.
        dataset = _tiny_dataset(seed)
        config = PLPConfig(
            embedding_dim=4,
            num_negatives=2,
            sampling_probability=0.1,  # with sigma=2, eps=0.5 allows ~4 steps
            noise_multiplier=2.0,
            epsilon=0.5,
        )
        full = PrivateLocationPredictor(config, rng=seed)
        history = full.fit(dataset)
        if history.stop_reason != "budget_exhausted" or len(history) < 2:
            pytest.skip("budget not exhausted at these parameters")
        truncated = PrivateLocationPredictor(
            config.with_overrides(max_steps=len(history) - 1), rng=seed
        )
        truncated.fit(dataset)
        assert full.model.params.allclose(truncated.model.params)
