"""Tests for the data-grouping machinery (Section 4.1/4.2 semantics)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.grouping import (
    assign_equal_frequency_buckets,
    assign_random_buckets,
    bucket_user_assignment_invariant,
    build_bucket_arrays,
    group_data,
    split_pairs,
)
from repro.exceptions import ConfigError


def _pairs(n: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(0, 100, size=(n, 2)).astype(np.int64)


class TestRandomBuckets:
    def test_partition(self):
        users = list(range(10))
        buckets = assign_random_buckets(users, 3, rng=0)
        flattened = [user for bucket in buckets for user in bucket]
        assert sorted(flattened) == users

    def test_bucket_sizes(self):
        buckets = assign_random_buckets(list(range(10)), 3, rng=0)
        assert [len(bucket) for bucket in buckets] == [3, 3, 3, 1]

    def test_invariant_helper(self):
        buckets = assign_random_buckets(list(range(10)), 4, rng=1)
        assert bucket_user_assignment_invariant(buckets, 4)
        assert not bucket_user_assignment_invariant([[1, 1]], 4)
        assert not bucket_user_assignment_invariant([[1, 2, 3]], 2)

    @given(
        num_users=st.integers(1, 60),
        grouping_factor=st.integers(1, 10),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=60, deadline=None)
    def test_partition_property(self, num_users, grouping_factor, seed):
        users = list(range(num_users))
        buckets = assign_random_buckets(users, grouping_factor, rng=seed)
        assert bucket_user_assignment_invariant(buckets, grouping_factor)
        assert sorted(u for bucket in buckets for u in bucket) == users

    def test_rejects_bad_factor(self):
        with pytest.raises(ConfigError):
            assign_random_buckets([1], 0)


class TestEqualFrequencyBuckets:
    def test_balances_records(self):
        counts = {1: 100, 2: 100, 3: 1, 4: 1, 5: 1, 6: 1}
        buckets = assign_equal_frequency_buckets(counts, 3)
        # Two buckets; the heavy users must not share a bucket.
        loads = [sum(counts[user] for user in bucket) for bucket in buckets]
        assert max(loads) < 150

    def test_no_user_split(self):
        counts = {i: i + 1 for i in range(9)}
        buckets = assign_equal_frequency_buckets(counts, 3)
        flattened = [user for bucket in buckets for user in bucket]
        assert sorted(flattened) == list(range(9))

    def test_empty(self):
        assert assign_equal_frequency_buckets({}, 3) == []


class TestSplitPairs:
    def test_split_one_is_identity(self):
        pairs = _pairs(10)
        chunks = split_pairs(pairs, 1, rng=0)
        assert len(chunks) == 1
        assert np.array_equal(chunks[0], pairs)

    def test_split_preserves_multiset(self):
        pairs = _pairs(11)
        chunks = split_pairs(pairs, 3, rng=0)
        assert len(chunks) == 3
        recombined = np.concatenate(chunks, axis=0)
        assert sorted(map(tuple, recombined)) == sorted(map(tuple, pairs))

    def test_chunks_roughly_even(self):
        chunks = split_pairs(_pairs(10), 2, rng=0)
        assert {chunk.shape[0] for chunk in chunks} == {5}


class TestBuildBucketArrays:
    def test_concatenates(self):
        user_pairs = {1: _pairs(3, 1), 2: _pairs(4, 2)}
        arrays = build_bucket_arrays([[1, 2]], user_pairs)
        assert arrays[0].shape == (7, 2)

    def test_empty_bucket(self):
        arrays = build_bucket_arrays([[1]], {1: np.empty((0, 2), dtype=np.int64)})
        assert arrays[0].shape == (0, 2)


class TestGroupData:
    def _user_pairs(self, num_users: int) -> dict[int, np.ndarray]:
        return {user: _pairs(5 + user, seed=user) for user in range(num_users)}

    def test_total_pairs_conserved(self):
        user_pairs = self._user_pairs(9)
        buckets = group_data(user_pairs, grouping_factor=4, rng=0)
        total = sum(bucket.shape[0] for bucket in buckets)
        assert total == sum(p.shape[0] for p in user_pairs.values())

    def test_bucket_count(self):
        buckets = group_data(self._user_pairs(9), grouping_factor=4, rng=0)
        assert len(buckets) == 3  # ceil(9 / 4)

    def test_equal_frequency_strategy(self):
        buckets = group_data(
            self._user_pairs(9), grouping_factor=3, strategy="equal_frequency", rng=0
        )
        total = sum(bucket.shape[0] for bucket in buckets)
        assert total == sum(5 + u for u in range(9))

    def test_omega_two_conserves_pairs(self):
        user_pairs = self._user_pairs(6)
        buckets = group_data(user_pairs, grouping_factor=2, split_factor=2, rng=0)
        total = sum(bucket.shape[0] for bucket in buckets)
        assert total == sum(p.shape[0] for p in user_pairs.values())

    def test_unknown_strategy(self):
        with pytest.raises(ConfigError):
            group_data({}, 2, strategy="alphabetical")

    @given(seed=st.integers(0, 200), lam=st.integers(1, 5))
    @settings(max_examples=40, deadline=None)
    def test_random_grouping_bucket_sizes(self, seed, lam):
        user_pairs = self._user_pairs(11)
        buckets = group_data(user_pairs, grouping_factor=lam, rng=seed)
        assert len(buckets) == -(-11 // lam)  # ceil division


class TestOmegaSeparation:
    def test_no_bucket_holds_two_chunks_of_one_user(self):
        # With omega = 2, each user's two chunks must land in two buckets.
        from repro.core.grouping import _separate_same_owner

        owner_of = {0: 10, 1: 10, 2: 20, 3: 20}
        assignment = [[0, 1], [2, 3]]  # both invalid: same owner twice
        fixed = _separate_same_owner(assignment, owner_of)
        for bucket in fixed:
            owners = [owner_of[v] for v in bucket]
            assert len(owners) == len(set(owners))
        # All chunks still present.
        assert sorted(v for bucket in fixed for v in bucket) == [0, 1, 2, 3]
