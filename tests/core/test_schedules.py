"""Tests for noise schedules and their trainer integration."""

from __future__ import annotations

import pytest

from repro.core.config import PLPConfig
from repro.core.schedules import (
    ConstantSchedule,
    ExponentialDecaySchedule,
    LinearDecaySchedule,
    StepDecaySchedule,
    make_schedule,
)
from repro.core.trainer import PrivateLocationPredictor
from repro.exceptions import ConfigError


class TestConstantSchedule:
    def test_constant(self):
        schedule = ConstantSchedule(sigma=2.5)
        assert schedule.sigma_at(1) == 2.5
        assert schedule.sigma_at(1000) == 2.5

    def test_rejects_negative(self):
        with pytest.raises(ConfigError):
            ConstantSchedule(sigma=-1.0)

    def test_rejects_step_zero(self):
        with pytest.raises(ConfigError):
            ConstantSchedule(sigma=1.0).sigma_at(0)


class TestLinearDecay:
    def test_endpoints(self):
        schedule = LinearDecaySchedule(start_sigma=3.0, end_sigma=1.0, decay_steps=5)
        assert schedule.sigma_at(1) == pytest.approx(3.0)
        assert schedule.sigma_at(5) == pytest.approx(1.0)
        assert schedule.sigma_at(100) == pytest.approx(1.0)

    def test_midpoint(self):
        schedule = LinearDecaySchedule(start_sigma=3.0, end_sigma=1.0, decay_steps=5)
        assert schedule.sigma_at(3) == pytest.approx(2.0)

    def test_monotone_decreasing(self):
        schedule = LinearDecaySchedule(start_sigma=4.0, end_sigma=2.0, decay_steps=50)
        values = [schedule.sigma_at(step) for step in range(1, 60)]
        assert all(a >= b for a, b in zip(values, values[1:]))


class TestExponentialDecay:
    def test_geometric(self):
        schedule = ExponentialDecaySchedule(start_sigma=2.0, decay_rate=0.5, floor=0.0)
        assert schedule.sigma_at(1) == pytest.approx(2.0)
        assert schedule.sigma_at(2) == pytest.approx(1.0)
        assert schedule.sigma_at(3) == pytest.approx(0.5)

    def test_floor(self):
        schedule = ExponentialDecaySchedule(start_sigma=2.0, decay_rate=0.1, floor=0.8)
        assert schedule.sigma_at(10) == pytest.approx(0.8)

    def test_rejects_bad_rate(self):
        with pytest.raises(ConfigError):
            ExponentialDecaySchedule(start_sigma=1.0, decay_rate=1.5)


class TestStepDecay:
    def test_piecewise(self):
        schedule = StepDecaySchedule(start_sigma=2.0, period=10, factor=0.5, floor=0.0)
        assert schedule.sigma_at(10) == pytest.approx(2.0)
        assert schedule.sigma_at(11) == pytest.approx(1.0)
        assert schedule.sigma_at(21) == pytest.approx(0.5)

    def test_floor(self):
        schedule = StepDecaySchedule(start_sigma=2.0, period=1, factor=0.1, floor=1.5)
        assert schedule.sigma_at(5) == pytest.approx(1.5)


class TestFactory:
    def test_families(self):
        assert isinstance(make_schedule("constant", 2.5), ConstantSchedule)
        assert isinstance(make_schedule("linear", 2.5), LinearDecaySchedule)
        assert isinstance(make_schedule("exponential", 2.5), ExponentialDecaySchedule)
        assert isinstance(make_schedule("step", 2.5), StepDecaySchedule)

    def test_unknown(self):
        with pytest.raises(ConfigError):
            make_schedule("cosine", 2.5)


class TestTrainerIntegration:
    def test_ledger_records_per_step_sigmas(self, split_dataset):
        train, _ = split_dataset
        config = PLPConfig(
            embedding_dim=8,
            num_negatives=4,
            sampling_probability=0.2,
            epsilon=50.0,
            max_steps=4,
        )
        schedule = LinearDecaySchedule(start_sigma=4.0, end_sigma=1.0, decay_steps=4)
        trainer = PrivateLocationPredictor(config, rng=0, noise_schedule=schedule)
        trainer.fit(train)
        recorded = [entry.noise_multiplier for entry in trainer.ledger.entries]
        assert recorded == pytest.approx([4.0, 3.0, 2.0, 1.0])

    def test_decaying_schedule_spends_budget_faster_late(self, split_dataset):
        # With decaying sigma, later steps cost more: the run must stop in
        # fewer steps than the constant schedule at the starting sigma.
        train, _ = split_dataset
        config = PLPConfig(
            embedding_dim=8,
            num_negatives=4,
            sampling_probability=0.1,
            noise_multiplier=3.0,
            epsilon=0.5,
        )
        constant = PrivateLocationPredictor(config, rng=0)
        constant_history = constant.fit(train)
        decaying = PrivateLocationPredictor(
            config,
            rng=0,
            noise_schedule=ExponentialDecaySchedule(
                start_sigma=3.0, decay_rate=0.9, floor=1.0
            ),
        )
        decaying_history = decaying.fit(train)
        assert len(decaying_history) < len(constant_history)
        assert decaying_history.stop_reason == "budget_exhausted"
