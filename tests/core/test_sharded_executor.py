"""Tests for the out-of-core ShardedExecutor and the deferred pipeline path.

The load-bearing contract: for the same seed, training results (embeddings
AND privacy ledger) are bit-identical across the serial, parallel, and
sharded executors, whether the corpus lives in memory or in a sharded
on-disk store, for every kernel backend and grouping strategy.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core._pairs import PairSource
from repro.core.config import PLPConfig
from repro.core.engine import (
    CheckpointObserver,
    ShardedExecutor,
    StepPipeline,
    make_executor,
)
from repro.core.trainer import PrivateLocationPredictor
from repro.data.checkins import CheckinDataset
from repro.data.store import write_sharded_store
from repro.data.synthetic import SyntheticConfig, generate_checkins
from repro.exceptions import ConfigError, ExecutorError
from repro.models.serialization import load_training_checkpoint
from repro.models.skipgram import SkipGramModel
from repro.privacy.accountant import PrivacyLedger


def _fast_config(**overrides) -> PLPConfig:
    base = dict(
        embedding_dim=8,
        num_negatives=4,
        sampling_probability=0.3,
        noise_multiplier=2.0,
        epsilon=50.0,
        grouping_factor=3,
        max_steps=3,
    )
    base.update(overrides)
    return PLPConfig(**base)


@pytest.fixture(scope="module")
def corpus():
    config = SyntheticConfig(num_users=60, num_locations=50, num_clusters=5)
    return CheckinDataset(generate_checkins(config, rng=17))


@pytest.fixture(scope="module")
def corpus_dir(corpus, tmp_path_factory):
    path = tmp_path_factory.mktemp("store") / "corpus"
    write_sharded_store(path, corpus, users_per_shard=25)
    return path


def _train(dataset, config, executor, workers=None, observers=()):
    trainer = PrivateLocationPredictor(
        config, rng=42, executor=executor, workers=workers, observers=observers
    )
    trainer.fit(dataset)
    return trainer


def _assert_same_run(a, b):
    np.testing.assert_array_equal(a.model.params["W"], b.model.params["W"])
    np.testing.assert_array_equal(a.model.params["Wc"], b.model.params["Wc"])
    assert a.ledger.cumulative_budget_spent() == b.ledger.cumulative_budget_spent()
    assert len(a.history) == len(b.history)
    for left, right in zip(a.history, b.history):
        assert left.mean_loss == right.mean_loss
        assert left.num_buckets == right.num_buckets


class TestBitIdentityAcrossExecutors:
    @pytest.mark.parametrize("backend", ["reference", "fast", "numba"])
    def test_serial_parallel_sharded_identical(self, corpus, corpus_dir, backend):
        config = _fast_config(backend=backend)
        serial = _train(corpus, config, "serial")
        parallel = _train(corpus, config, "parallel", workers=2)
        sharded_mem = _train(corpus, config, "sharded", workers=2)
        sharded_disk = _train(str(corpus_dir), config, "sharded", workers=2)
        _assert_same_run(serial, parallel)
        _assert_same_run(serial, sharded_mem)
        _assert_same_run(serial, sharded_disk)

    def test_equal_frequency_grouping_identical(self, corpus, corpus_dir):
        config = _fast_config(grouping_strategy="equal_frequency")
        serial = _train(corpus, config, "serial")
        sharded_disk = _train(str(corpus_dir), config, "sharded", workers=2)
        _assert_same_run(serial, sharded_disk)


class TestFaultTolerance:
    def test_worker_death_retries_to_identical_result(
        self, corpus, corpus_dir, tmp_path
    ):
        config = _fast_config()
        serial = _train(corpus, config, "serial")

        marker = tmp_path / "kill-one-worker"
        marker.touch()
        executor = ShardedExecutor(max_workers=2, fault_marker=str(marker))
        with executor:
            survived = _train(str(corpus_dir), config, executor)
        # The marker was claimed: exactly one worker died and the round
        # was deterministically replayed on a fresh pool.
        assert not marker.exists()
        _assert_same_run(serial, survived)

    def test_retry_budget_exhaustion_raises(self, corpus_dir, tmp_path):
        # A marker that re-arms on every claim exhausts the retry budget.
        config = _fast_config(max_steps=1)
        marker = tmp_path / "always-dead"

        class RearmingExecutor(ShardedExecutor):
            def run_step(self, spec, jobs):
                marker.touch()
                return super().run_step(spec, jobs)

            def _run_round(self, spec, jobs):
                marker.touch()
                return super()._run_round(spec, jobs)

        executor = RearmingExecutor(
            max_workers=2, max_round_retries=1, fault_marker=str(marker)
        )
        with executor, pytest.raises(ExecutorError, match="retry budget"):
            _train(str(corpus_dir), config, executor)

    def test_checkpoint_round_trip_through_sharded_executor(
        self, corpus_dir, tmp_path
    ):
        path = tmp_path / "checkpoint.npz"
        config = _fast_config()
        trainer = _train(
            str(corpus_dir),
            config,
            "sharded",
            workers=2,
            observers=[CheckpointObserver(path)],
        )
        checkpoint = load_training_checkpoint(path)
        assert checkpoint.step == len(trainer.history)
        np.testing.assert_array_equal(
            checkpoint.parameters["W"], trainer.model.params["W"]
        )
        resumed = checkpoint.restore_ledger()
        assert (
            resumed.cumulative_budget_spent()
            == trainer.ledger.cumulative_budget_spent()
        )


class TestConfigValidation:
    def test_make_executor_sharded(self):
        executor, owned = make_executor("sharded", workers=2)
        try:
            assert isinstance(executor, ShardedExecutor)
            assert owned
            assert executor.max_workers == 2
        finally:
            executor.close()

    def test_invalid_constructor_args(self):
        with pytest.raises(ConfigError, match="max_workers"):
            ShardedExecutor(max_workers=0)
        with pytest.raises(ConfigError, match="max_round_retries"):
            ShardedExecutor(max_round_retries=-1)

    def test_split_factor_rejected(self, corpus):
        config = _fast_config(split_factor=2)
        with pytest.raises(ConfigError, match="split_factor"):
            _train(corpus, config, "sharded", workers=2)

    def test_unshippable_source_rejected(self, corpus):
        class OpaqueSource(PairSource):
            def __init__(self, inner):
                self.inner = inner

            @property
            def users(self):
                return self.inner.users

            def pairs(self, user):
                return self.inner.pairs(user)

            def pair_count(self, user):
                return self.inner.pair_count(user)

        from repro.core._pairs import build_pair_source
        from repro.data.store import open_corpus

        _, source = build_pair_source(open_corpus(corpus), window=2)
        model = SkipGramModel(num_locations=80, embedding_dim=8, rng=0)
        pipeline = StepPipeline(
            _fast_config(), model, OpaqueSource(source), root=7,
            ledger=PrivacyLedger(delta=2e-4, sampling_probability=0.3),
        )
        with ShardedExecutor(max_workers=2) as executor:
            with pytest.raises(ConfigError, match="shipped"):
                pipeline.prepare_for(executor)

    def test_unconfigured_executor_rejects_jobs(self):
        with ShardedExecutor(max_workers=1) as executor:
            with pytest.raises(ExecutorError, match="configure"):
                executor.run_step(None, [object()])


class TestForkSafetyContract:
    """Close-before-fork / reopen-in-worker for mmap-backed stores (DPL008).

    A memory-mapped shard must never cross a process boundary: pickling a
    numpy memmap silently serializes the *full shard bytes*, and the OS
    handle is invalid in the child anyway. The contract is that the
    coordinator drops its maps before shipping work and remaps lazily.
    """

    def _store_source(self, corpus_dir):
        from repro.core._pairs import build_pair_source
        from repro.data.store import ShardedCheckinStore

        store = ShardedCheckinStore(corpus_dir)
        _, source = build_pair_source(store, window=2)
        return store, source

    def test_release_resources_drops_maps_and_cache(self, corpus_dir):
        store, source = self._store_source(corpus_dir)
        user = store.users[0]
        before = source.pairs(user).copy()
        assert store._open_shards, "reading history should map a shard"
        assert source._cache, "reading pairs should populate the LRU"

        source.release_resources()
        assert not store._open_shards
        assert not source._cache
        # The store stays usable: access lazily remaps.
        np.testing.assert_array_equal(source.pairs(user), before)

    def test_pickling_a_mapped_store_drops_handles_and_stays_small(
        self, corpus_dir
    ):
        import pickle

        from repro.data.store import ShardedCheckinStore

        store = ShardedCheckinStore(corpus_dir)
        user = store.users[0]
        original = store.history(user)
        assert store._open_shards

        payload = pickle.dumps(store)
        fresh = pickle.dumps(ShardedCheckinStore(corpus_dir))
        # Without __getstate__ the live memmap would serialize the whole
        # shard; with it, a mapped store pickles like an unmapped one.
        assert abs(len(payload) - len(fresh)) < 4096

        clone = pickle.loads(payload)
        assert not clone._open_shards
        assert clone.history(user).checkins == original.checkins

    def test_prepare_for_releases_coordinator_resources(self, corpus_dir):
        store, source = self._store_source(corpus_dir)
        source.pairs(store.users[0])
        assert store._open_shards and source._cache

        model = SkipGramModel(num_locations=80, embedding_dim=8, rng=0)
        pipeline = StepPipeline(
            _fast_config(), model, source, root=7,
            ledger=PrivacyLedger(delta=2e-4, sampling_probability=0.3),
        )
        with ShardedExecutor(max_workers=2) as executor:
            pipeline.prepare_for(executor)
            assert not store._open_shards
            assert not source._cache

    def test_worker_death_while_coordinator_held_a_map(
        self, corpus, corpus_dir, tmp_path
    ):
        from repro.data.store import ShardedCheckinStore

        config = _fast_config()
        serial = _train(corpus, config, "serial")

        store = ShardedCheckinStore(corpus_dir)
        store.history(store.users[0])  # coordinator holds a live map
        marker = tmp_path / "kill-one-worker"
        marker.touch()
        with ShardedExecutor(max_workers=2, fault_marker=str(marker)) as executor:
            survived = _train(store, config, executor)
        assert not marker.exists()
        _assert_same_run(serial, survived)
