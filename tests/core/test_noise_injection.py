"""Statistical verification of the trainer's Gaussian noise injection.

These tests pin the *magnitude* of the DP noise that actually lands in the
model parameters — the property every privacy claim rests on. With local
learning disabled (learning_rate -> 0 makes bucket deltas vanish), one
Algorithm 1 step leaves ``theta_1 - theta_0 = noise / |H|`` with noise
drawn from N(0, sigma^2 omega^2 C^2 I), so the empirical standard
deviation across the model's ~50k coordinates estimates
``sigma * omega * C / |H|`` tightly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import PLPConfig
from repro.core.trainer import PrivateLocationPredictor


def _noise_std_after_one_step(split_dataset, sigma, omega, grouping_factor):
    train, _ = split_dataset
    config = PLPConfig(
        embedding_dim=16,
        num_negatives=4,
        sampling_probability=1.0,  # deterministic |H|
        noise_multiplier=sigma,
        split_factor=omega,
        grouping_factor=grouping_factor,
        clip_bound=0.5,
        learning_rate=1e-12,  # freeze learning: the update is pure noise
        epsilon=1e9,
        max_steps=1,
    )
    trainer = PrivateLocationPredictor(config, rng=123)
    # Capture the initialization by re-seeding an identical model.
    from repro.core._pairs import build_training_data
    from repro.models.skipgram import SkipGramModel

    vocabulary, _ = build_training_data(train, config.window)
    reference = SkipGramModel(
        num_locations=vocabulary.size,
        embedding_dim=config.embedding_dim,
        num_negatives=config.num_negatives,
        rng=np.random.default_rng(123),
    )
    history = trainer.fit(train)
    buckets = history.steps[0].num_buckets
    diffs = np.concatenate(
        [
            (trainer.model.params[name] - reference.params[name]).ravel()
            for name in trainer.model.params.names()
        ]
    )
    return float(diffs.std()), buckets


class TestNoiseMagnitude:
    def test_matches_sigma_c_over_buckets(self, split_dataset):
        sigma = 2.0
        measured, buckets = _noise_std_after_one_step(
            split_dataset, sigma=sigma, omega=1, grouping_factor=4
        )
        expected = sigma * 0.5 / buckets
        assert measured == pytest.approx(expected, rel=0.05)

    def test_omega_scales_sensitivity(self, split_dataset):
        # omega = 2 splits each user into two virtual users, so the bucket
        # count roughly doubles while the noise std per *sum* doubles
        # (sensitivity omega * C); per averaged update the measured noise
        # must equal sigma * omega * C / |H| exactly.
        base, buckets_a = _noise_std_after_one_step(
            split_dataset, sigma=2.0, omega=1, grouping_factor=4
        )
        split, buckets_b = _noise_std_after_one_step(
            split_dataset, sigma=2.0, omega=2, grouping_factor=4
        )
        assert buckets_b > buckets_a  # virtual users inflate the bucket count
        assert base == pytest.approx(2.0 * 1 * 0.5 / buckets_a, rel=0.05)
        assert split == pytest.approx(2.0 * 2 * 0.5 / buckets_b, rel=0.05)

    def test_fewer_buckets_more_noise(self, split_dataset):
        fine, buckets_fine = _noise_std_after_one_step(
            split_dataset, sigma=2.0, omega=1, grouping_factor=2
        )
        coarse, buckets_coarse = _noise_std_after_one_step(
            split_dataset, sigma=2.0, omega=1, grouping_factor=16
        )
        assert buckets_fine > buckets_coarse
        # Noise per averaged update scales like 1 / |H|.
        assert coarse / fine == pytest.approx(
            buckets_fine / buckets_coarse, rel=0.1
        )

    def test_zero_sigma_zero_noise(self, split_dataset):
        measured, _ = _noise_std_after_one_step(
            split_dataset, sigma=0.0, omega=1, grouping_factor=4
        )
        assert measured < 1e-9
