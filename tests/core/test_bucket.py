"""Tests for ModelUpdateFromBucket (Algorithm 1, lines 15-22)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.bucket import model_update_from_bucket
from repro.exceptions import ConfigError
from repro.models.skipgram import SkipGramModel
from repro.privacy.clipping import joint_l2_norm


@pytest.fixture()
def model() -> SkipGramModel:
    return SkipGramModel(num_locations=20, embedding_dim=6, num_negatives=4, rng=0)


def _bucket_pairs(n: int = 60, seed: int = 1) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(0, 20, size=(n, 2)).astype(np.int64)


class TestModelUpdateFromBucket:
    def test_theta_not_modified(self, model):
        theta = model.params
        snapshot = theta.copy()
        model_update_from_bucket(
            model, theta, _bucket_pairs(), 16, 0.1, clip_bound=0.5, rng=0
        )
        assert theta.allclose(snapshot)

    def test_clipped_norm_bounded(self, model):
        update = model_update_from_bucket(
            model, model.params, _bucket_pairs(200), 16, 5.0, clip_bound=0.1, rng=0
        )
        assert update.clipped_norm <= 0.1 + 1e-9

    def test_per_layer_tensor_bounds(self, model):
        update = model_update_from_bucket(
            model, model.params, _bucket_pairs(200), 16, 5.0,
            clip_bound=0.3, clipping="per_layer", rng=0,
        )
        per_tensor = 0.3 / math.sqrt(3)
        for tensor in update.delta.values():
            assert np.linalg.norm(tensor) <= per_tensor + 1e-9

    def test_global_clipping_preserves_direction(self, model):
        raw = model_update_from_bucket(
            model, model.params, _bucket_pairs(200), 16, 5.0,
            clip_bound=1e9, clipping="global", rng=0,
        )
        clipped = model_update_from_bucket(
            model, model.params, _bucket_pairs(200), 16, 5.0,
            clip_bound=0.1, clipping="global", rng=0,
        )
        # Same rng sequence -> same raw delta; global clipping scales all
        # tensors by the same factor.
        scale = clipped.delta["W"].ravel() @ raw.delta["W"].ravel() / (
            np.linalg.norm(raw.delta["W"]) ** 2 + 1e-30
        )
        for name in raw.delta:
            assert np.allclose(clipped.delta[name], scale * raw.delta[name], atol=1e-12)

    def test_small_update_not_clipped(self, model):
        update = model_update_from_bucket(
            model, model.params, _bucket_pairs(5), 16, 1e-4, clip_bound=10.0, rng=0
        )
        assert update.unclipped_norm == pytest.approx(update.clipped_norm, rel=1e-9)

    def test_empty_bucket_zero_delta(self, model):
        update = model_update_from_bucket(
            model, model.params, np.empty((0, 2), dtype=np.int64), 16, 0.1,
            clip_bound=0.5, rng=0,
        )
        assert update.num_batches == 0
        assert joint_l2_norm(update.delta) == 0.0
        assert math.isnan(update.mean_loss)

    def test_num_batches(self, model):
        update = model_update_from_bucket(
            model, model.params, _bucket_pairs(33), 16, 0.1, clip_bound=0.5, rng=0
        )
        assert update.num_batches == 3  # ceil(33 / 16)

    def test_single_gradient_mode_one_batch(self, model):
        update = model_update_from_bucket(
            model, model.params, _bucket_pairs(100), 16, 0.1,
            clip_bound=0.5, local_update="gradient", rng=0,
        )
        assert update.num_batches == 1

    def test_gradient_mode_smaller_than_sgd(self, model):
        # One gradient step moves less than a multi-batch local SGD pass.
        sgd = model_update_from_bucket(
            model, model.params, _bucket_pairs(200), 16, 0.1,
            clip_bound=1e9, rng=0,
        )
        gradient = model_update_from_bucket(
            model, model.params, _bucket_pairs(200), 16, 0.1,
            clip_bound=1e9, local_update="gradient", rng=0,
        )
        assert gradient.unclipped_norm < sgd.unclipped_norm

    def test_invalid_modes(self, model):
        with pytest.raises(ConfigError):
            model_update_from_bucket(
                model, model.params, _bucket_pairs(), 16, 0.1,
                clip_bound=0.5, clipping="l1",
            )
        with pytest.raises(ConfigError):
            model_update_from_bucket(
                model, model.params, _bucket_pairs(), 16, 0.1,
                clip_bound=0.5, local_update="warp",
            )
