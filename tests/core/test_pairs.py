"""Tests for the shared training-data preparation (core._pairs)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core._pairs import build_training_data
from repro.data.checkins import CheckinDataset
from repro.exceptions import DataError
from repro.types import CheckIn


def _dataset(times_by_user: dict[int, list[float]]) -> CheckinDataset:
    checkins = []
    location = 0
    for user, times in times_by_user.items():
        for t in times:
            checkins.append(CheckIn(user=user, location=location % 5, timestamp=t))
            location += 1
    return CheckinDataset(checkins)


class TestBuildTrainingData:
    def test_every_user_has_entry(self, split_dataset):
        train, _ = split_dataset
        _, user_pairs = build_training_data(train, window=2)
        assert set(user_pairs) == set(train.users)

    def test_pair_tokens_within_vocab(self, split_dataset):
        train, _ = split_dataset
        vocabulary, user_pairs = build_training_data(train, window=2)
        for pairs in user_pairs.values():
            if pairs.size:
                assert pairs.min() >= 0
                assert pairs.max() < vocabulary.size

    def test_sessionization_limits_windows(self):
        # Two check-ins 10 hours apart: sessionized -> no pairs;
        # full-history -> one pair each way.
        dataset = _dataset({1: [0.0, 36_000.0], 2: [0.0, 1.0, 2.0]})
        _, sessionized = build_training_data(dataset, window=2, sessionize_training=True)
        assert sessionized[1].shape[0] == 0
        _, full = build_training_data(dataset, window=2, sessionize_training=False)
        assert full[1].shape[0] == 2

    def test_no_pairs_raises(self):
        dataset = _dataset({1: [0.0], 2: [5.0]})
        with pytest.raises(DataError):
            build_training_data(dataset, window=2)

    def test_window_width_controls_pair_count(self, split_dataset):
        train, _ = split_dataset
        _, narrow = build_training_data(train, window=1)
        _, wide = build_training_data(train, window=3)
        narrow_total = sum(p.shape[0] for p in narrow.values())
        wide_total = sum(p.shape[0] for p in wide.values())
        assert wide_total > narrow_total
