"""Integration tests for the PLP trainer, DP-SGD baseline, and non-private trainer."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.config import PLPConfig
from repro.core.dpsgd import UserLevelDPSGD
from repro.core.nonprivate import NonPrivateTrainer
from repro.core.trainer import PrivateLocationPredictor
from repro.eval.evaluator import LeaveOneOutEvaluator
from repro.exceptions import ConfigError, NotFittedError
from repro.privacy.accountant import max_steps_for_budget


def _fast_config(**overrides) -> PLPConfig:
    base = dict(
        embedding_dim=8,
        num_negatives=4,
        sampling_probability=0.2,
        noise_multiplier=2.0,
        epsilon=50.0,  # large enough that max_steps is the binding stop
        grouping_factor=3,
        max_steps=12,
    )
    base.update(overrides)
    return PLPConfig(**base)


class TestPrivateTrainer:
    def test_budget_stop_respects_epsilon(self, split_dataset):
        train, _ = split_dataset
        config = _fast_config(
            epsilon=0.5, max_steps=None, noise_multiplier=2.0, sampling_probability=0.1
        )
        trainer = PrivateLocationPredictor(config, rng=0)
        history = trainer.fit(train)
        assert history.stop_reason == "budget_exhausted"
        expected_steps = max_steps_for_budget(
            0.5, config.delta, config.sampling_probability, 2.0
        )
        # The crossing step executes then rolls back, so len = expected + 1.
        assert len(history) == expected_steps + 1
        assert history.final_epsilon >= 0.5

    def test_max_steps_stop(self, split_dataset):
        train, _ = split_dataset
        trainer = PrivateLocationPredictor(_fast_config(max_steps=5), rng=0)
        history = trainer.fit(train)
        assert len(history) == 5
        assert history.stop_reason == "max_steps"

    def test_ledger_entries_match_steps(self, split_dataset):
        train, _ = split_dataset
        trainer = PrivateLocationPredictor(_fast_config(max_steps=7), rng=0)
        history = trainer.fit(train)
        assert len(trainer.ledger) == len(history) == 7
        entry = trainer.ledger.entries[0]
        assert entry.clip_bound == trainer.config.clip_bound
        assert entry.noise_multiplier == trainer.config.noise_multiplier

    def test_epsilon_monotone_over_steps(self, split_dataset):
        train, _ = split_dataset
        trainer = PrivateLocationPredictor(_fast_config(max_steps=8), rng=0)
        history = trainer.fit(train)
        epsilons = history.epsilons()
        assert all(a < b for a, b in zip(epsilons, epsilons[1:]))

    def test_deterministic_under_seed(self, split_dataset):
        train, _ = split_dataset
        a = PrivateLocationPredictor(_fast_config(max_steps=4), rng=11)
        b = PrivateLocationPredictor(_fast_config(max_steps=4), rng=11)
        a.fit(train)
        b.fit(train)
        assert a.model.params.allclose(b.model.params)

    def test_different_seeds_differ(self, split_dataset):
        train, _ = split_dataset
        a = PrivateLocationPredictor(_fast_config(max_steps=4), rng=11)
        b = PrivateLocationPredictor(_fast_config(max_steps=4), rng=12)
        a.fit(train)
        b.fit(train)
        assert not a.model.params.allclose(b.model.params)

    def test_rollback_on_budget_crossing(self, split_dataset):
        # Params returned are theta_{t-1}: refitting with max_steps at the
        # pre-crossing count must give the same final parameters.
        train, _ = split_dataset
        config = _fast_config(
            epsilon=0.5, max_steps=None, noise_multiplier=2.0, sampling_probability=0.1
        )
        full = PrivateLocationPredictor(config, rng=3)
        history = full.fit(train)
        steps_before_crossing = len(history) - 1
        truncated = PrivateLocationPredictor(
            config.with_overrides(max_steps=steps_before_crossing), rng=3
        )
        truncated.fit(train)
        assert full.model.params.allclose(truncated.model.params)

    def test_sigma_zero_requires_max_steps(self, split_dataset):
        train, _ = split_dataset
        config = _fast_config(noise_multiplier=0.0, max_steps=None)
        with pytest.raises(ConfigError):
            PrivateLocationPredictor(config, rng=0).fit(train)

    def test_sigma_zero_runs_with_max_steps(self, split_dataset):
        train, _ = split_dataset
        config = _fast_config(noise_multiplier=0.0, max_steps=3)
        history = PrivateLocationPredictor(config, rng=0).fit(train)
        assert len(history) == 3
        assert history.stop_reason == "max_steps"

    def test_eval_callback_invoked(self, split_dataset):
        train, _ = split_dataset
        config = _fast_config(max_steps=6, eval_every=2)
        trainer = PrivateLocationPredictor(config, rng=0)
        calls: list[int] = []

        def eval_fn(embeddings):
            calls.append(embeddings.num_locations)
            return {"marker": float(len(calls))}

        history = trainer.fit(train, eval_fn=eval_fn)
        # Every 2 steps; the final step (6) already carries a snapshot, so
        # no duplicate is appended.
        assert [record.step for record in history.evaluations] == [2, 4, 6]
        assert history.evaluations[0].metrics["marker"] == 1.0

    def test_not_fitted_errors(self):
        trainer = PrivateLocationPredictor(_fast_config())
        with pytest.raises(NotFittedError):
            trainer.embeddings()
        assert trainer.epsilon_spent() == 0.0

    def test_recommender_round_trip(self, split_dataset, holdout_trajectories):
        train, _ = split_dataset
        trainer = PrivateLocationPredictor(_fast_config(max_steps=5), rng=0)
        trainer.fit(train)
        evaluator = LeaveOneOutEvaluator(holdout_trajectories, k_values=(10,))
        result = evaluator.evaluate(trainer.recommender())
        assert 0.0 <= result.hit_rate[10] <= 1.0
        assert result.num_cases > 0

    def test_server_adam_variant_runs(self, split_dataset):
        train, _ = split_dataset
        config = _fast_config(max_steps=4, server_optimizer="adam")
        history = PrivateLocationPredictor(config, rng=0).fit(train)
        assert len(history) == 4

    def test_omega_two_runs_with_scaled_noise(self, split_dataset):
        train, _ = split_dataset
        config = _fast_config(max_steps=3, split_factor=2)
        trainer = PrivateLocationPredictor(config, rng=0)
        history = trainer.fit(train)
        assert len(history) == 3

    def test_equal_frequency_grouping_runs(self, split_dataset):
        train, _ = split_dataset
        config = _fast_config(max_steps=3, grouping_strategy="equal_frequency")
        history = PrivateLocationPredictor(config, rng=0).fit(train)
        assert len(history) == 3


class TestUserLevelDPSGD:
    def test_forces_single_user_buckets(self, split_dataset):
        train, _ = split_dataset
        baseline = UserLevelDPSGD(_fast_config(max_steps=3, grouping_factor=4), rng=0)
        assert baseline.config.grouping_factor == 1
        assert baseline.config.local_update == "gradient"
        history = baseline.fit(train)
        for record in history:
            assert record.num_buckets == record.num_sampled_users

    def test_same_privacy_accounting_as_plp(self, split_dataset):
        train, _ = split_dataset
        config = _fast_config(max_steps=5)
        plp = PrivateLocationPredictor(config, rng=0)
        dpsgd = UserLevelDPSGD(config, rng=0)
        plp.fit(train)
        dpsgd.fit(train)
        assert plp.epsilon_spent() == pytest.approx(dpsgd.epsilon_spent())


class TestNonPrivateTrainer:
    def test_loss_decreases(self, split_dataset):
        train, _ = split_dataset
        trainer = NonPrivateTrainer(embedding_dim=8, num_negatives=4, rng=0)
        history = trainer.fit(train, epochs=6)
        losses = history.losses()
        assert losses[-1] < losses[0]
        assert history.stop_reason == "epochs_completed"

    def test_one_record_per_epoch(self, split_dataset):
        train, _ = split_dataset
        trainer = NonPrivateTrainer(embedding_dim=8, num_negatives=4, rng=0)
        assert len(trainer.fit(train, epochs=3)) == 3

    def test_beats_random_ranking(self, split_dataset, holdout_trajectories):
        train, _ = split_dataset
        trainer = NonPrivateTrainer(embedding_dim=16, rng=0)
        trainer.fit(train, epochs=10)
        evaluator = LeaveOneOutEvaluator(holdout_trajectories, k_values=(10,))
        result = evaluator.evaluate(trainer.recommender())
        random_floor = 10.0 / trainer.vocabulary.size
        assert result.hit_rate[10] > 1.5 * random_floor

    def test_eval_callback_cadence(self, split_dataset):
        train, _ = split_dataset
        trainer = NonPrivateTrainer(embedding_dim=8, rng=0)
        history = trainer.fit(
            train, epochs=5, eval_fn=lambda e: {"x": 1.0}, eval_every_epochs=2
        )
        # Epochs 2, 4, and the final extra snapshot at 5.
        assert [record.step for record in history.evaluations] == [2, 4, 5]

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            NonPrivateTrainer().embeddings()

    def test_invalid_epochs(self, split_dataset):
        train, _ = split_dataset
        with pytest.raises(ConfigError):
            NonPrivateTrainer().fit(train, epochs=0)
