"""Shared fixtures: a small but structured synthetic dataset."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.checkins import CheckinDataset
from repro.data.preprocessing import paper_preprocessing
from repro.data.splitting import holdout_users_split, sessionize_dataset
from repro.data.synthetic import SyntheticConfig, generate_checkins


@pytest.fixture(scope="session")
def small_config() -> SyntheticConfig:
    """Generator configuration small enough for unit tests."""
    return SyntheticConfig(
        num_users=80,
        num_locations=60,
        num_clusters=6,
        mean_checkins_per_user=25.0,
        checkins_sigma=0.5,
    )


@pytest.fixture(scope="session")
def small_checkins(small_config):
    """Raw synthetic check-ins (session scope: generation is deterministic)."""
    return generate_checkins(small_config, rng=123)


@pytest.fixture(scope="session")
def small_dataset(small_checkins) -> CheckinDataset:
    """Preprocessed dataset under the paper's filters."""
    return CheckinDataset(paper_preprocessing(small_checkins))


@pytest.fixture(scope="session")
def split_dataset(small_dataset):
    """(train, holdout) split with 15 held-out users."""
    return holdout_users_split(small_dataset, 15, rng=5)


@pytest.fixture(scope="session")
def holdout_trajectories(split_dataset):
    """Sessionized holdout trajectories for evaluation."""
    _, holdout = split_dataset
    return sessionize_dataset(holdout)


@pytest.fixture()
def rng() -> np.random.Generator:
    """Fresh deterministic generator per test."""
    return np.random.default_rng(2024)
