"""Shared fixtures: a small but structured synthetic dataset, plus dpsan.

Setting ``REPRO_DPSAN=1`` runs the whole session under the runtime
sanitizer (:mod:`repro.analysis.sanitizer`): RNG draw-site logging,
single-writer assertions, and registry lock discipline — CI's ``dpsan``
job runs the engine and serving suites this way. Individual tests opt in
explicitly with the ``dpsan`` fixture, which yields a fresh sanitizer
(temporarily standing down the session-wide one, since sanitizers do not
nest in-process).
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.data.checkins import CheckinDataset
from repro.data.preprocessing import paper_preprocessing
from repro.data.splitting import holdout_users_split, sessionize_dataset
from repro.data.synthetic import SyntheticConfig, generate_checkins


@pytest.fixture(scope="session", autouse=True)
def _dpsan_session():
    """Session-wide sanitizer when ``REPRO_DPSAN`` is set; else inert."""
    from repro.analysis.sanitizer import ENV_VAR, Sanitizer

    if not os.environ.get(ENV_VAR):
        yield None
        return
    with Sanitizer() as sanitizer:
        yield sanitizer


@pytest.fixture
def dpsan(_dpsan_session):
    """A fresh per-test sanitizer with its own empty draw log."""
    from repro.analysis.sanitizer import Sanitizer

    if _dpsan_session is not None:
        _dpsan_session.uninstall()
    try:
        with Sanitizer() as sanitizer:
            yield sanitizer
    finally:
        if _dpsan_session is not None:
            _dpsan_session.install()


@pytest.fixture(scope="session")
def small_config() -> SyntheticConfig:
    """Generator configuration small enough for unit tests."""
    return SyntheticConfig(
        num_users=80,
        num_locations=60,
        num_clusters=6,
        mean_checkins_per_user=25.0,
        checkins_sigma=0.5,
    )


@pytest.fixture(scope="session")
def small_checkins(small_config):
    """Raw synthetic check-ins (session scope: generation is deterministic)."""
    return generate_checkins(small_config, rng=123)


@pytest.fixture(scope="session")
def small_dataset(small_checkins) -> CheckinDataset:
    """Preprocessed dataset under the paper's filters."""
    return CheckinDataset(paper_preprocessing(small_checkins))


@pytest.fixture(scope="session")
def split_dataset(small_dataset):
    """(train, holdout) split with 15 held-out users."""
    return holdout_users_split(small_dataset, 15, rng=5)


@pytest.fixture(scope="session")
def holdout_trajectories(split_dataset):
    """Sessionized holdout trajectories for evaluation."""
    _, holdout = split_dataset
    return sessionize_dataset(holdout)


@pytest.fixture()
def rng() -> np.random.Generator:
    """Fresh deterministic generator per test."""
    return np.random.default_rng(2024)
