"""Edge-case and failure-injection tests across the pipeline."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import (
    CheckinDataset,
    LeaveOneOutEvaluator,
    NextLocationRecommender,
    PLPConfig,
    PrivateLocationPredictor,
)
from repro.exceptions import ConfigError, DataError
from repro.models.embeddings import EmbeddingMatrix
from repro.models.vocabulary import LocationVocabulary
from repro.types import CheckIn, Trajectory


def _dataset(rows: list[tuple[int, int, float]]) -> CheckinDataset:
    return CheckinDataset(
        [CheckIn(user=u, location=l, timestamp=t) for u, l, t in rows]
    )


class TestDegenerateTrainingData:
    def test_single_location_vocabulary_rejected(self):
        # Two users visiting the same single POI: window pairs exist, but a
        # skip-gram over one location is meaningless (model requires >= 2).
        dataset = _dataset(
            [(1, 0, 0.0), (1, 0, 60.0), (2, 0, 0.0), (2, 0, 60.0)]
        )
        trainer = PrivateLocationPredictor(
            PLPConfig(max_steps=1, epsilon=50.0), rng=0
        )
        with pytest.raises(ConfigError):
            trainer.fit(dataset)

    def test_no_window_pairs_rejected(self):
        # Every check-in 10 hours apart: sessionization isolates each one.
        dataset = _dataset(
            [(1, i, i * 36_000.0) for i in range(4)]
            + [(2, i, i * 36_000.0) for i in range(4)]
        )
        trainer = PrivateLocationPredictor(
            PLPConfig(max_steps=1, epsilon=50.0), rng=0
        )
        with pytest.raises(DataError):
            trainer.fit(dataset)

    def test_trainer_survives_users_with_no_pairs(self):
        # One normal user plus one whose visits never co-occur in a window:
        # the pairless user contributes empty buckets, not crashes.
        dataset = _dataset(
            [(1, i % 3, float(i)) for i in range(8)]
            + [(2, i, i * 36_000.0) for i in range(4)]
        )
        config = PLPConfig(
            embedding_dim=4,
            num_negatives=2,
            sampling_probability=1.0,
            max_steps=2,
            epsilon=50.0,
        )
        history = PrivateLocationPredictor(config, rng=0).fit(dataset)
        assert len(history) == 2


class TestDegenerateEvaluation:
    def test_all_targets_unknown(self):
        vocabulary = LocationVocabulary.from_sequences([["a", "b"]])
        recommender = NextLocationRecommender(
            EmbeddingMatrix(np.eye(2)), vocabulary=vocabulary
        )
        trajectories = [Trajectory(user=1, locations=("a", "ghost"))]
        result = LeaveOneOutEvaluator(trajectories).evaluate(recommender)
        assert result.num_cases == 0
        assert result.num_skipped == 1
        assert math.isnan(result.hit_rate[10])
        assert math.isnan(result.mrr)

    def test_empty_trajectory_list(self):
        recommender = NextLocationRecommender(EmbeddingMatrix(np.eye(3)))
        result = LeaveOneOutEvaluator([]).evaluate(recommender)
        assert result.num_cases == 0

    def test_ndcg_populated(self):
        recommender = NextLocationRecommender(EmbeddingMatrix(np.eye(3)))
        trajectories = [Trajectory(user=1, locations=(0, 1))]
        result = LeaveOneOutEvaluator(trajectories, k_values=(2,)).evaluate(
            recommender
        )
        assert 0.0 <= result.ndcg[2] <= 1.0


class TestExtremePrivacyParameters:
    def test_huge_noise_still_terminates(self, split_dataset):
        train, _ = split_dataset
        config = PLPConfig(
            embedding_dim=4,
            num_negatives=2,
            sampling_probability=0.2,
            noise_multiplier=100.0,
            epsilon=0.01,
            max_steps=50,
        )
        history = PrivateLocationPredictor(config, rng=0).fit(train)
        assert history.stop_reason in ("budget_exhausted", "max_steps")
        assert np.all(
            np.isfinite(
                PrivateLocationPredictor(config, rng=0).config.noise_multiplier
            )
        )

    def test_tiny_clip_bound_trains(self, split_dataset):
        train, _ = split_dataset
        config = PLPConfig(
            embedding_dim=4,
            num_negatives=2,
            sampling_probability=0.2,
            clip_bound=1e-4,
            max_steps=2,
            epsilon=50.0,
        )
        history = PrivateLocationPredictor(config, rng=0).fit(train)
        assert len(history) == 2

    def test_q_one_samples_everyone(self, split_dataset):
        train, _ = split_dataset
        config = PLPConfig(
            embedding_dim=4,
            num_negatives=2,
            sampling_probability=1.0,
            max_steps=1,
            epsilon=50.0,
        )
        trainer = PrivateLocationPredictor(config, rng=0)
        history = trainer.fit(train)
        assert history.steps[0].num_sampled_users == train.num_users


class TestRecommenderEdges:
    def test_top_k_larger_than_vocabulary(self):
        recommender = NextLocationRecommender(EmbeddingMatrix(np.eye(3)))
        results = recommender.recommend([0], top_k=50)
        assert len(results) == 3

    def test_duplicate_recent_locations(self):
        recommender = NextLocationRecommender(EmbeddingMatrix(np.eye(3)))
        scores_dup = recommender.score_all([1, 1, 1])
        scores_single = recommender.score_all([1])
        assert np.allclose(scores_dup, scores_single)
