"""The end-to-end benchmark runner (``benchmarks/run_bench.py``)."""

import json

import pytest

from benchmarks.run_bench import STAGE_NAMES, main, validate_report


@pytest.fixture(scope="module")
def report(tmp_path_factory):
    """One real ``--quick`` run, shared by every test in the module."""
    out = tmp_path_factory.mktemp("bench") / "BENCH_plp.json"
    assert main(["--quick", "--out", str(out), "--seed", "3"]) == 0
    return json.loads(out.read_text())


class TestQuickRun:
    def test_report_is_schema_valid(self, report):
        validate_report(report)  # raises on mismatch

    def test_training_section(self, report):
        training = report["training"]
        assert training["steps"] > 0
        assert training["buckets_total"] > 0
        assert training["buckets_per_second"] > 0
        assert set(training["stage_seconds"]) == set(STAGE_NAMES)
        # Every stage ran once per step.
        for aggregate in training["stage_seconds"].values():
            assert aggregate["count"] == training["steps"]

    def test_latency_sections(self, report):
        assert report["recommend"]["queries"] > 0
        assert 0 <= report["recommend"]["p50_seconds"] <= report["recommend"]["p95_seconds"]
        evaluation = report["evaluation"]
        assert evaluation["cases"] > 0
        assert evaluation["query_seconds_p50"] <= evaluation["query_seconds_p95"]
        assert evaluation["hit_rate"]


class TestValidateReport:
    def test_rejects_missing_section(self, report):
        broken = dict(report)
        del broken["training"]
        with pytest.raises(ValueError, match="training"):
            validate_report(broken)

    def test_rejects_incomplete_stages(self, report):
        broken = json.loads(json.dumps(report))
        del broken["training"]["stage_seconds"]["noise"]
        with pytest.raises(ValueError, match="stage_seconds"):
            validate_report(broken)

    def test_rejects_wrong_schema_version(self, report):
        broken = dict(report)
        broken["schema_version"] = 999
        with pytest.raises(ValueError, match="schema_version"):
            validate_report(broken)
