"""The end-to-end benchmark runner (``repro.bench`` via its shim)."""

import json

import pytest

from benchmarks.run_bench import (
    STAGE_NAMES,
    compare_to_baseline,
    main,
    validate_report,
)


@pytest.fixture(scope="module")
def report(tmp_path_factory):
    """One real ``--quick`` run, shared by every test in the module."""
    out = tmp_path_factory.mktemp("bench") / "BENCH_plp.json"
    assert main(["--quick", "--out", str(out), "--seed", "3",
                 "--baseline", "none"]) == 0
    return json.loads(out.read_text())


class TestQuickRun:
    def test_report_is_schema_valid(self, report):
        validate_report(report)  # raises on mismatch

    def test_training_section(self, report):
        training = report["training"]
        assert training["steps"] > 0
        assert training["buckets_total"] > 0
        assert training["buckets_per_second"] > 0
        assert set(training["stage_seconds"]) == set(STAGE_NAMES)
        # Every stage ran once per step.
        for aggregate in training["stage_seconds"].values():
            assert aggregate["count"] == training["steps"]

    def test_kernel_section(self, report):
        kernels = report["kernels"]
        timings = kernels["local_train_seconds"]
        assert "reference" in timings and "fast" in timings
        assert all(seconds > 0 for seconds in timings.values())
        speedup = kernels["speedup_vs_reference"]["fast"]
        assert speedup == pytest.approx(
            timings["reference"] / timings["fast"]
        )
        # Without numba installed the compiled backend is not re-timed.
        if not kernels["numba_compiled"]:
            assert "numba" not in timings

    def test_backend_recorded(self, report):
        assert report["backend"] == "reference"

    def test_latency_sections(self, report):
        assert report["recommend"]["queries"] > 0
        assert 0 <= report["recommend"]["p50_seconds"] <= report["recommend"]["p95_seconds"]
        evaluation = report["evaluation"]
        assert evaluation["cases"] > 0
        assert evaluation["query_seconds_p50"] <= evaluation["query_seconds_p95"]
        assert evaluation["hit_rate"]

    def test_sweep_section(self, report):
        sweep = report["sweep"]
        assert sweep["runs"] >= 8
        assert sweep["workers"] >= 2
        assert sweep["executed"] == sweep["runs"]
        assert sweep["failed"] == 0
        assert sweep["runs_per_second"] > 0
        # The resume pass must skip every completed run and cost a small
        # fraction of the fresh sweep.
        assert sweep["resume_skipped"] == sweep["runs"]
        assert sweep["resume_executed"] == 0
        assert 0 <= sweep["resume_overhead_ratio"] < 0.5


class TestValidateReport:
    def test_rejects_missing_section(self, report):
        broken = dict(report)
        del broken["training"]
        with pytest.raises(ValueError, match="training"):
            validate_report(broken)

    def test_rejects_incomplete_stages(self, report):
        broken = json.loads(json.dumps(report))
        del broken["training"]["stage_seconds"]["noise"]
        with pytest.raises(ValueError, match="stage_seconds"):
            validate_report(broken)

    def test_rejects_wrong_schema_version(self, report):
        broken = dict(report)
        broken["schema_version"] = 999
        with pytest.raises(ValueError, match="schema_version"):
            validate_report(broken)

    def test_rejects_missing_kernels(self, report):
        broken = json.loads(json.dumps(report))
        del broken["kernels"]["speedup_vs_reference"]
        with pytest.raises(ValueError, match="speedup_vs_reference"):
            validate_report(broken)

    def test_rejects_missing_sweep_section(self, report):
        broken = dict(report)
        del broken["sweep"]
        with pytest.raises(ValueError, match="sweep"):
            validate_report(broken)

    def test_rejects_incomplete_sweep_resume(self, report):
        broken = json.loads(json.dumps(report))
        broken["sweep"]["resume_skipped"] = broken["sweep"]["runs"] - 1
        with pytest.raises(ValueError, match="resume_skipped"):
            validate_report(broken)

    def test_rejects_failed_sweep_runs(self, report):
        broken = json.loads(json.dumps(report))
        broken["sweep"]["failed"] = 1
        with pytest.raises(ValueError, match="failed"):
            validate_report(broken)


class TestCommittedBaseline:
    """The repo-root ``BENCH_plp.json`` is a real, current report."""

    @pytest.fixture(scope="class")
    def baseline(self):
        from repro.bench import _default_baseline

        path = _default_baseline()
        assert path is not None, "committed BENCH_plp.json missing"
        return json.loads(path.read_text())

    def test_baseline_is_schema_valid(self, baseline):
        validate_report(baseline)

    def test_baseline_shows_fast_kernel_speedup(self, baseline):
        # The committed report must make the fused fast path's win
        # visible; the live measurement gate is the bench-marked
        # tests/nn/test_backend_speedup.py.
        assert baseline["kernels"]["speedup_vs_reference"]["fast"] >= 2.5


class TestCompareToBaseline:
    def test_identical_reports_pass(self, report):
        assert compare_to_baseline(report, report) == []

    def test_small_drift_within_threshold_passes(self, report):
        baseline = json.loads(json.dumps(report))
        baseline["training"]["buckets_per_second"] *= 1.10
        baseline["recommend"]["p95_seconds"] *= 0.90
        assert compare_to_baseline(report, baseline) == []

    def test_throughput_regression_fails(self, report):
        baseline = json.loads(json.dumps(report))
        baseline["training"]["buckets_per_second"] = (
            report["training"]["buckets_per_second"] * 2.0
        )
        messages = compare_to_baseline(report, baseline)
        assert len(messages) == 1
        assert "buckets/sec" in messages[0]

    def test_recommend_p95_regression_fails(self, report):
        baseline = json.loads(json.dumps(report))
        baseline["recommend"]["p95_seconds"] = 0.010
        fresh = json.loads(json.dumps(report))
        fresh["recommend"]["p95_seconds"] = 0.020
        messages = compare_to_baseline(fresh, baseline)
        assert len(messages) == 1
        assert "p95" in messages[0]

    def test_microsecond_p95_jitter_is_not_a_regression(self, report):
        # At the quick scale p95 is tens of microseconds; a 2x blip there
        # is scheduler noise, not a regression (absolute slack applies).
        baseline = json.loads(json.dumps(report))
        baseline["recommend"]["p95_seconds"] = 0.0001
        fresh = json.loads(json.dumps(report))
        fresh["recommend"]["p95_seconds"] = 0.0002
        assert compare_to_baseline(fresh, baseline) == []

    def test_mismatched_mode_is_not_comparable(self, report):
        baseline = json.loads(json.dumps(report))
        baseline["quick"] = not report["quick"]
        with pytest.raises(ValueError, match="not comparable"):
            compare_to_baseline(report, baseline)

    def test_mismatched_backend_is_not_comparable(self, report):
        baseline = json.loads(json.dumps(report))
        baseline["backend"] = "fast"
        with pytest.raises(ValueError, match="backend"):
            compare_to_baseline(report, baseline)

    def test_regression_exits_3(self, report, tmp_path, monkeypatch):
        import repro.bench as bench_module

        # Reuse the fixture's report instead of re-running the pipeline.
        monkeypatch.setattr(
            bench_module,
            "run_benchmark",
            lambda **kwargs: json.loads(json.dumps(report)),
        )
        baseline = json.loads(json.dumps(report))
        baseline["training"]["buckets_per_second"] *= 1e6
        baseline_path = tmp_path / "baseline.json"
        baseline_path.write_text(json.dumps(baseline))
        out = tmp_path / "BENCH_plp.json"
        assert main(["--quick", "--out", str(out), "--seed", "3",
                     "--baseline", str(baseline_path)]) == 3
