"""Tests for repro.types and repro.exceptions."""

from __future__ import annotations

import pytest

from repro.exceptions import (
    ConfigError,
    DataError,
    PrivacyBudgetExceeded,
    ReproError,
)
from repro.types import (
    CheckIn,
    Trajectory,
    UserHistory,
    group_by_user,
    validate_sequences,
)


class TestCheckIn:
    def test_fields(self):
        checkin = CheckIn(user=1, location=2, timestamp=3.0)
        assert checkin.user == 1
        assert checkin.location == 2
        assert checkin.timestamp == 3.0

    def test_coordinates_default_to_nan(self):
        checkin = CheckIn(user=1, location=2, timestamp=3.0)
        assert not checkin.has_coordinates()

    def test_has_coordinates_true(self):
        checkin = CheckIn(user=1, location=2, timestamp=3.0, latitude=35.6, longitude=139.7)
        assert checkin.has_coordinates()

    def test_frozen(self):
        checkin = CheckIn(user=1, location=2, timestamp=3.0)
        with pytest.raises(AttributeError):
            checkin.user = 5  # type: ignore[misc]


class TestTrajectory:
    def test_length_and_iteration(self):
        trajectory = Trajectory(user=1, locations=(3, 1, 4))
        assert len(trajectory) == 3
        assert list(trajectory) == [3, 1, 4]

    def test_timestamp_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Trajectory(user=1, locations=(1, 2), timestamps=(1.0,))

    def test_duration(self):
        trajectory = Trajectory(user=1, locations=(1, 2, 3), timestamps=(0.0, 5.0, 9.0))
        assert trajectory.duration == 9.0

    def test_duration_untimed_is_zero(self):
        assert Trajectory(user=1, locations=(1, 2)).duration == 0.0

    def test_prefix(self):
        trajectory = Trajectory(user=1, locations=(1, 2, 3), timestamps=(0.0, 1.0, 2.0))
        prefix = trajectory.prefix(2)
        assert prefix.locations == (1, 2)
        assert prefix.timestamps == (0.0, 1.0)
        assert prefix.user == 1


class TestUserHistory:
    def test_add_keeps_time_order(self):
        history = UserHistory(user=7)
        history.add(CheckIn(user=7, location=1, timestamp=10.0))
        history.add(CheckIn(user=7, location=2, timestamp=5.0))
        assert history.locations() == [2, 1]
        assert history.timestamps() == [5.0, 10.0]

    def test_rejects_foreign_user(self):
        history = UserHistory(user=7)
        with pytest.raises(ValueError):
            history.add(CheckIn(user=8, location=1, timestamp=0.0))


class TestGroupByUser:
    def test_partitions_and_sorts(self):
        checkins = [
            CheckIn(user=1, location=10, timestamp=2.0),
            CheckIn(user=2, location=20, timestamp=1.0),
            CheckIn(user=1, location=11, timestamp=1.0),
        ]
        histories = group_by_user(checkins)
        assert set(histories) == {1, 2}
        assert histories[1].locations() == [11, 10]
        assert histories[2].locations() == [20]

    def test_empty_input(self):
        assert group_by_user([]) == {}


class TestValidateSequences:
    def test_accepts_valid(self):
        validate_sequences([[1, 2], [0]])

    def test_rejects_empty_sequence(self):
        with pytest.raises(ValueError):
            validate_sequences([[1], []])

    def test_rejects_negative_id(self):
        with pytest.raises(ValueError):
            validate_sequences([[1, -2]])


class TestExceptions:
    def test_hierarchy(self):
        assert issubclass(ConfigError, ReproError)
        assert issubclass(ConfigError, ValueError)
        assert issubclass(DataError, ReproError)

    def test_privacy_budget_exceeded_message(self):
        error = PrivacyBudgetExceeded(spent=2.5, budget=2.0)
        assert error.spent == 2.5
        assert error.budget == 2.0
        assert "2.5" in str(error)
