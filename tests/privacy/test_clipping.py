"""Tests for repro.privacy.clipping, including hypothesis properties."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.exceptions import ConfigError
from repro.privacy.clipping import (
    clip_by_global_norm,
    clip_parameters,
    clip_tensor,
    joint_l2_norm,
    per_layer_clip_bound,
)

_finite_arrays = arrays(
    dtype=np.float64,
    shape=array_shapes(min_dims=1, max_dims=2, min_side=1, max_side=8),
    elements=st.floats(-1e6, 1e6, allow_nan=False),
)


class TestPerLayerClipBound:
    def test_paper_value(self):
        # theta = {W, W', B'} -> each tensor clipped to C / sqrt(3).
        assert per_layer_clip_bound(0.5, 3) == pytest.approx(0.5 / math.sqrt(3))

    def test_single_tensor(self):
        assert per_layer_clip_bound(1.0, 1) == 1.0

    def test_rejects_bad_inputs(self):
        with pytest.raises(ConfigError):
            per_layer_clip_bound(0.0, 3)
        with pytest.raises(ConfigError):
            per_layer_clip_bound(1.0, 0)


class TestClipTensor:
    def test_small_tensor_unchanged(self):
        tensor = np.array([0.1, 0.2])
        assert np.allclose(clip_tensor(tensor, 1.0), tensor)

    def test_large_tensor_scaled_to_bound(self):
        tensor = np.array([3.0, 4.0])  # norm 5
        clipped = clip_tensor(tensor, 1.0)
        assert np.linalg.norm(clipped) == pytest.approx(1.0)
        # Direction preserved.
        assert np.allclose(clipped / np.linalg.norm(clipped), tensor / 5.0)

    def test_input_not_mutated(self):
        tensor = np.array([3.0, 4.0])
        clip_tensor(tensor, 1.0)
        assert np.array_equal(tensor, [3.0, 4.0])

    @given(tensor=_finite_arrays, bound=st.floats(1e-3, 1e3))
    @settings(max_examples=60, deadline=None)
    def test_norm_never_exceeds_bound(self, tensor, bound):
        clipped = clip_tensor(tensor, bound)
        assert np.linalg.norm(clipped) <= bound * (1 + 1e-9)

    @given(tensor=_finite_arrays, bound=st.floats(1e-3, 1e3))
    @settings(max_examples=60, deadline=None)
    def test_never_increases_norm(self, tensor, bound):
        clipped = clip_tensor(tensor, bound)
        assert np.linalg.norm(clipped) <= np.linalg.norm(tensor) + 1e-9


class TestClipParameters:
    def test_joint_norm_bounded_by_overall(self):
        tensors = {
            "W": np.full((4, 4), 10.0),
            "Wc": np.full((4, 4), -7.0),
            "b": np.full(4, 3.0),
        }
        clipped = clip_parameters(tensors, overall_bound=0.5)
        assert joint_l2_norm(clipped) <= 0.5 + 1e-9

    def test_each_tensor_bounded(self):
        tensors = {"a": np.full(9, 5.0), "b": np.full(9, 5.0)}
        clipped = clip_parameters(tensors, overall_bound=1.0)
        bound = 1.0 / math.sqrt(2)
        for tensor in clipped.values():
            assert np.linalg.norm(tensor) <= bound + 1e-9

    def test_small_updates_pass_through(self):
        tensors = {"a": np.array([0.01, 0.0]), "b": np.array([0.0, 0.02])}
        clipped = clip_parameters(tensors, overall_bound=1.0)
        for name in tensors:
            assert np.allclose(clipped[name], tensors[name])


class TestClipByGlobalNorm:
    def test_preserves_direction_jointly(self):
        tensors = {"a": np.array([3.0, 0.0]), "b": np.array([0.0, 4.0])}
        clipped = clip_by_global_norm(tensors, overall_bound=1.0)
        # Joint norm was 5; everything scaled by 1/5.
        assert np.allclose(clipped["a"], [0.6, 0.0])
        assert np.allclose(clipped["b"], [0.0, 0.8])

    def test_noop_when_under_bound(self):
        tensors = {"a": np.array([0.1]), "b": np.array([0.1])}
        clipped = clip_by_global_norm(tensors, overall_bound=1.0)
        assert np.allclose(clipped["a"], tensors["a"])

    @given(
        scale=st.floats(0.01, 100.0),
        bound=st.floats(0.1, 10.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_joint_norm_bounded(self, scale, bound):
        tensors = {"a": np.full(5, scale), "b": np.full((2, 2), -scale)}
        clipped = clip_by_global_norm(tensors, bound)
        assert joint_l2_norm(clipped) <= bound + 1e-9


class TestJointL2Norm:
    def test_matches_concatenation(self):
        tensors = {"a": np.array([1.0, 2.0]), "b": np.array([[2.0], [4.0]])}
        expected = np.linalg.norm([1.0, 2.0, 2.0, 4.0])
        assert joint_l2_norm(tensors) == pytest.approx(expected)

    def test_empty_mapping_is_zero(self):
        assert joint_l2_norm({}) == 0.0
