"""Tests for repro.privacy.sensitivity (Section 4.2 of the paper)."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigError
from repro.privacy.sensitivity import GaussianSumQuerySensitivity


class TestGaussianSumQuerySensitivity:
    def test_case1_omega_one(self):
        # Case 1: a user in exactly one bucket -> sensitivity C.
        sensitivity = GaussianSumQuerySensitivity(clip_bound=0.5, split_factor=1)
        assert sensitivity.value == 0.5

    def test_case2_omega_two(self):
        # Case 2: data split over two buckets -> sensitivity 2C.
        sensitivity = GaussianSumQuerySensitivity(clip_bound=0.5, split_factor=2)
        assert sensitivity.value == 1.0

    def test_noise_std_scales_linearly_with_omega(self):
        base = GaussianSumQuerySensitivity(clip_bound=0.5, split_factor=1)
        split = GaussianSumQuerySensitivity(clip_bound=0.5, split_factor=2)
        assert split.noise_stddev(2.5) == pytest.approx(2 * base.noise_stddev(2.5))

    def test_noise_variance_quadruples_at_omega_two(self):
        # The paper: "the now quadrupled (proportional to omega^2) noise variance".
        base = GaussianSumQuerySensitivity(clip_bound=0.5, split_factor=1)
        split = GaussianSumQuerySensitivity(clip_bound=0.5, split_factor=2)
        assert split.noise_variance(1.5) == pytest.approx(4 * base.noise_variance(1.5))

    def test_noise_std_value(self):
        sensitivity = GaussianSumQuerySensitivity(clip_bound=0.5, split_factor=1)
        assert sensitivity.noise_stddev(2.5) == pytest.approx(1.25)

    def test_zero_noise_multiplier(self):
        sensitivity = GaussianSumQuerySensitivity(clip_bound=0.5)
        assert sensitivity.noise_stddev(0.0) == 0.0

    def test_rejects_invalid(self):
        with pytest.raises(ConfigError):
            GaussianSumQuerySensitivity(clip_bound=0.0)
        with pytest.raises(ConfigError):
            GaussianSumQuerySensitivity(clip_bound=1.0, split_factor=0)
        with pytest.raises(ConfigError):
            GaussianSumQuerySensitivity(clip_bound=1.0).noise_stddev(-1.0)
