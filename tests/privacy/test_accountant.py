"""Tests for MomentsAccountant, PrivacyLedger, composition and calibration."""

from __future__ import annotations

import math

import pytest

from repro.exceptions import ConfigError, PrivacyBudgetExceeded
from repro.privacy.accountant import (
    MomentsAccountant,
    PrivacyLedger,
    advanced_composition_epsilon,
    calibrate_noise_multiplier,
    compute_epsilon,
    max_steps_for_budget,
    naive_composition_epsilon,
)
from repro.privacy.accountant.calibration import steps_per_epoch


class TestMomentsAccountant:
    def test_matches_direct_computation(self):
        accountant = MomentsAccountant()
        for _ in range(100):
            accountant.step(noise_multiplier=2.5, sampling_probability=0.06)
        direct = compute_epsilon(0.06, 2.5, 100, 2e-4)
        assert accountant.get_epsilon(2e-4) == pytest.approx(direct, rel=1e-9)

    def test_count_argument_equivalent_to_loop(self):
        looped = MomentsAccountant()
        for _ in range(50):
            looped.step(1.5, 0.1)
        batched = MomentsAccountant()
        batched.step(1.5, 0.1, count=50)
        assert batched.get_epsilon(1e-5) == pytest.approx(looped.get_epsilon(1e-5))

    def test_heterogeneous_steps_accumulate(self):
        accountant = MomentsAccountant()
        accountant.step(2.5, 0.06, count=10)
        eps_a = accountant.get_epsilon(1e-4)
        accountant.step(1.0, 0.1, count=10)
        assert accountant.get_epsilon(1e-4) > eps_a

    def test_reset(self):
        accountant = MomentsAccountant()
        accountant.step(1.5, 0.1, count=10)
        accountant.reset()
        assert accountant.steps == 0
        assert accountant.get_epsilon(1e-5) == 0.0

    def test_zero_steps_zero_epsilon(self):
        assert MomentsAccountant().get_epsilon(1e-5) == 0.0

    def test_invalid_orders_rejected(self):
        with pytest.raises(ConfigError):
            MomentsAccountant(orders=[1.0, 2.0])
        with pytest.raises(ConfigError):
            MomentsAccountant(orders=[])


class TestPrivacyLedger:
    def test_track_and_query(self):
        ledger = PrivacyLedger(delta=2e-4, sampling_probability=0.06)
        assert ledger.cumulative_budget_spent() == 0.0
        for _ in range(20):
            ledger.track_budget(clip_bound=0.5, noise_multiplier=2.5)
        assert len(ledger) == 20
        direct = compute_epsilon(0.06, 2.5, 20, 2e-4)
        assert ledger.cumulative_budget_spent() == pytest.approx(direct, rel=1e-9)

    def test_entries_record_parameters(self):
        ledger = PrivacyLedger(delta=1e-5, sampling_probability=0.1)
        ledger.track_budget(0.5, 1.5)
        ledger.track_budget(0.3, 2.0, sampling_probability=0.2)
        entries = ledger.entries
        assert entries[0].clip_bound == 0.5
        assert entries[0].sampling_probability == 0.1
        assert entries[1].noise_multiplier == 2.0
        assert entries[1].sampling_probability == 0.2
        assert [entry.step for entry in entries] == [0, 1]

    def test_assert_within_budget(self):
        ledger = PrivacyLedger(delta=2e-4, sampling_probability=0.06)
        ledger.track_budget(0.5, 2.5)
        ledger.assert_within_budget(10.0)  # fine
        with pytest.raises(PrivacyBudgetExceeded):
            ledger.assert_within_budget(1e-6)

    def test_reset(self):
        ledger = PrivacyLedger(delta=2e-4, sampling_probability=0.06)
        ledger.track_budget(0.5, 2.5)
        ledger.reset()
        assert len(ledger) == 0
        assert ledger.cumulative_budget_spent() == 0.0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigError):
            PrivacyLedger(delta=0.0, sampling_probability=0.1)
        ledger = PrivacyLedger(delta=1e-5, sampling_probability=0.1)
        with pytest.raises(ConfigError):
            ledger.track_budget(clip_bound=0.0, noise_multiplier=1.0)


class TestComposition:
    def test_naive_is_linear(self):
        assert naive_composition_epsilon(0.1, 100) == pytest.approx(10.0)

    def test_advanced_beats_naive_for_many_steps(self):
        step_eps, steps = 0.01, 10_000
        naive = naive_composition_epsilon(step_eps, steps)
        advanced, _ = advanced_composition_epsilon(step_eps, 0.0, steps, 1e-6)
        assert advanced < naive

    def test_advanced_delta_bookkeeping(self):
        _, delta_total = advanced_composition_epsilon(0.1, 1e-7, 100, 1e-6)
        assert delta_total == pytest.approx(100 * 1e-7 + 1e-6)

    def test_moments_accountant_beats_advanced(self):
        # Same per-step Gaussian mechanism at sigma = 4, q = 1:
        # classic per-step epsilon vs moments accountant over 1000 steps.
        sigma, delta, steps = 4.0, 1e-6, 1000
        step_eps = math.sqrt(2 * math.log(1.25 / delta)) / sigma
        advanced, _ = advanced_composition_epsilon(step_eps, delta, steps, delta)
        accountant = compute_epsilon(1.0, sigma, steps, delta * (steps + 1))
        assert accountant < advanced

    def test_zero_steps(self):
        assert naive_composition_epsilon(0.5, 0) == 0.0
        eps, delta = advanced_composition_epsilon(0.5, 1e-7, 0, 1e-6)
        assert eps == 0.0


class TestCalibration:
    def test_noise_calibration_hits_target(self):
        target, delta, q, steps = 2.0, 2e-4, 0.06, 300
        sigma = calibrate_noise_multiplier(target, delta, q, steps)
        achieved = compute_epsilon(q, sigma, steps, delta)
        assert achieved <= target
        # And not wastefully large: slightly smaller sigma must overshoot.
        overshoot = compute_epsilon(q, sigma - 0.05, steps, delta)
        assert overshoot > target

    def test_max_steps_is_tight(self):
        budget, delta, q, sigma = 2.0, 2e-4, 0.06, 2.5
        steps = max_steps_for_budget(budget, delta, q, sigma)
        assert compute_epsilon(q, sigma, steps, delta) < budget
        assert compute_epsilon(q, sigma, steps + 1, delta) >= budget

    def test_max_steps_zero_when_one_step_exceeds(self):
        # Tiny noise: even one step blows a small budget.
        assert max_steps_for_budget(0.01, 1e-5, 0.5, 0.1) == 0

    def test_max_steps_zero_noise(self):
        assert max_steps_for_budget(1.0, 1e-5, 0.1, 0.0) == 0

    def test_more_budget_more_steps(self):
        a = max_steps_for_budget(1.0, 2e-4, 0.06, 2.5)
        b = max_steps_for_budget(4.0, 2e-4, 0.06, 2.5)
        assert a < b

    def test_larger_sigma_more_steps(self):
        a = max_steps_for_budget(2.0, 2e-4, 0.06, 1.5)
        b = max_steps_for_budget(2.0, 2e-4, 0.06, 3.0)
        assert a < b

    def test_smaller_q_more_steps(self):
        # "A lower sampling rate ... the amount of budget consumed in each
        # step is decreased" (Section 5.2).
        a = max_steps_for_budget(2.0, 2e-4, 0.12, 2.5)
        b = max_steps_for_budget(2.0, 2e-4, 0.04, 2.5)
        assert a < b

    def test_steps_per_epoch(self):
        assert steps_per_epoch(0.06) == 17
        assert steps_per_epoch(1.0) == 1
        with pytest.raises(ConfigError):
            steps_per_epoch(0.0)

    def test_unreachable_target_rejected(self):
        with pytest.raises(ConfigError):
            calibrate_noise_multiplier(
                0.001, 1e-5, 0.5, 10_000, sigma_bounds=(0.1, 1.0)
            )
