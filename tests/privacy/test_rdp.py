"""Tests for the RDP accountant math (repro.privacy.accountant.rdp).

These pin the implementation to closed-form limits and to the qualitative
properties the moments accountant must satisfy; they are the correctness
backbone of every privacy claim the trainers make.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigError
from repro.privacy.accountant.rdp import (
    DEFAULT_RDP_ORDERS,
    compute_epsilon,
    compute_rdp_sampled_gaussian,
    epsilon_curve,
    rdp_to_epsilon,
)


class TestRdpClosedForms:
    def test_no_subsampling_matches_gaussian_rdp(self):
        # q = 1: RDP of the plain Gaussian mechanism is alpha / (2 sigma^2).
        for alpha in (2.0, 4.0, 16.0, 64.0):
            for sigma in (0.5, 1.0, 2.5):
                rdp = compute_rdp_sampled_gaussian(1.0, sigma, 1, [alpha])
                assert rdp[0] == pytest.approx(alpha / (2 * sigma**2), rel=1e-9)

    def test_zero_sampling_is_free(self):
        rdp = compute_rdp_sampled_gaussian(0.0, 1.0, 100, [2.0, 8.0])
        assert np.all(rdp == 0.0)

    def test_zero_noise_is_infinite(self):
        rdp = compute_rdp_sampled_gaussian(0.5, 0.0, 1, [2.0])
        assert math.isinf(rdp[0])

    def test_linear_composition(self):
        one = compute_rdp_sampled_gaussian(0.1, 1.5, 1, [8.0])
        ten = compute_rdp_sampled_gaussian(0.1, 1.5, 10, [8.0])
        assert ten[0] == pytest.approx(10 * one[0], rel=1e-12)

    def test_integer_and_fractional_orders_agree_nearby(self):
        # The two series must agree in the limit: alpha = 8 vs 8.0001.
        int_rdp = compute_rdp_sampled_gaussian(0.05, 2.0, 1, [8.0])[0]
        frac_rdp = compute_rdp_sampled_gaussian(0.05, 2.0, 1, [8.0001])[0]
        assert frac_rdp == pytest.approx(int_rdp, rel=1e-3)

    def test_subsampling_amplifies(self):
        # Subsampled RDP must be far below the unsampled Gaussian RDP.
        sampled = compute_rdp_sampled_gaussian(0.01, 1.0, 1, [8.0])[0]
        unsampled = compute_rdp_sampled_gaussian(1.0, 1.0, 1, [8.0])[0]
        assert sampled < unsampled / 10


class TestRdpMonotonicity:
    @given(q=st.floats(0.001, 0.5), sigma=st.floats(0.5, 5.0))
    @settings(max_examples=30, deadline=None)
    def test_rdp_increases_with_order(self, q, sigma):
        rdp = compute_rdp_sampled_gaussian(q, sigma, 1, [2.0, 8.0, 32.0])
        assert rdp[0] <= rdp[1] <= rdp[2]

    @given(sigma=st.floats(0.5, 5.0))
    @settings(max_examples=30, deadline=None)
    def test_rdp_increases_with_q(self, sigma):
        low = compute_rdp_sampled_gaussian(0.01, sigma, 1, [8.0])[0]
        high = compute_rdp_sampled_gaussian(0.2, sigma, 1, [8.0])[0]
        assert low < high

    @given(q=st.floats(0.001, 0.5))
    @settings(max_examples=30, deadline=None)
    def test_rdp_decreases_with_sigma(self, q):
        noisy = compute_rdp_sampled_gaussian(q, 4.0, 1, [8.0])[0]
        sharp = compute_rdp_sampled_gaussian(q, 1.0, 1, [8.0])[0]
        assert noisy < sharp


class TestEpsilonConversion:
    def test_improved_at_most_classic(self):
        rdp = compute_rdp_sampled_gaussian(0.06, 2.5, 200, DEFAULT_RDP_ORDERS)
        improved, _ = rdp_to_epsilon(DEFAULT_RDP_ORDERS, rdp, 2e-4, "improved")
        classic, _ = rdp_to_epsilon(DEFAULT_RDP_ORDERS, rdp, 2e-4, "classic")
        assert improved <= classic

    def test_epsilon_decreases_with_delta(self):
        rdp = compute_rdp_sampled_gaussian(0.06, 2.5, 100, DEFAULT_RDP_ORDERS)
        strict, _ = rdp_to_epsilon(DEFAULT_RDP_ORDERS, rdp, 1e-8)
        loose, _ = rdp_to_epsilon(DEFAULT_RDP_ORDERS, rdp, 1e-2)
        assert loose < strict

    def test_epsilon_nonnegative(self):
        rdp = compute_rdp_sampled_gaussian(0.001, 10.0, 1, DEFAULT_RDP_ORDERS)
        epsilon, _ = rdp_to_epsilon(DEFAULT_RDP_ORDERS, rdp, 1e-5)
        assert epsilon >= 0.0

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ConfigError):
            rdp_to_epsilon([2.0, 3.0], [0.1], 1e-5)

    def test_unknown_conversion_rejected(self):
        with pytest.raises(ConfigError):
            rdp_to_epsilon([2.0], [0.1], 1e-5, conversion="magic")


class TestComputeEpsilon:
    def test_known_regime_magnitude(self):
        # Canonical MNIST DP-SGD setting: the accountant must land in the
        # low single digits (TF-Privacy reports ~3.0 classic / ~2.6 improved).
        q = 256 / 60_000
        steps = int(60 / q)
        epsilon = compute_epsilon(q, 1.1, steps, 1e-5)
        assert 2.0 < epsilon < 3.5

    def test_epsilon_grows_with_steps(self):
        eps_100 = compute_epsilon(0.06, 2.5, 100, 2e-4)
        eps_400 = compute_epsilon(0.06, 2.5, 400, 2e-4)
        assert eps_100 < eps_400

    def test_single_step_bounded_by_classic_gaussian(self):
        # One unsampled step at sigma large enough for the classic theorem:
        # the accountant must not be (much) worse than sqrt(2 ln(1.25/d))/sigma.
        sigma, delta = 8.0, 1e-5
        classic = math.sqrt(2 * math.log(1.25 / delta)) / sigma
        accountant = compute_epsilon(1.0, sigma, 1, delta)
        assert accountant <= classic * 1.05

    def test_invalid_q_rejected(self):
        with pytest.raises(ConfigError):
            compute_epsilon(1.5, 1.0, 1, 1e-5)

    def test_orders_below_one_rejected(self):
        with pytest.raises(ConfigError):
            compute_rdp_sampled_gaussian(0.1, 1.0, 1, [0.5, 2.0])


class TestEpsilonCurve:
    def test_monotone_in_steps(self):
        curve = epsilon_curve(0.06, 2.5, [10, 100, 500], 2e-4)
        values = [eps for _, eps in curve]
        assert values == sorted(values)

    def test_matches_pointwise_computation(self):
        curve = dict(epsilon_curve(0.06, 2.5, [50], 2e-4))
        assert curve[50] == pytest.approx(compute_epsilon(0.06, 2.5, 50, 2e-4), rel=1e-9)
