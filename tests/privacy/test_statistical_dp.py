"""Empirical (sampling-based) verification of the Gaussian mechanism's RDP.

These tests estimate the Renyi divergence between the mechanism's output
distributions on neighboring inputs by Monte Carlo and compare against the
closed form the accountant uses — a ground-truth check on the quantity
every privacy claim rests on, independent of the analytic derivation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.privacy.accountant.rdp import compute_rdp_sampled_gaussian
from repro.privacy.mechanisms import GaussianMechanism


def _empirical_renyi_gaussian(sigma: float, alpha: float, samples: int = 400_000) -> float:
    """Monte Carlo Renyi divergence D_alpha(N(1, s^2) || N(0, s^2)).

    Uses the importance form E_Q[(dP/dQ)^alpha] with Q = N(0, s^2).
    """
    rng = np.random.default_rng(12345)
    x = rng.normal(0.0, sigma, size=samples)  # samples from Q
    # log dP/dQ = ((2x - 1)) / (2 sigma^2) for unit shift
    log_ratio = (2.0 * x - 1.0) / (2.0 * sigma**2)
    log_moment = np.log(np.mean(np.exp(alpha * log_ratio)))
    return float(log_moment / (alpha - 1.0))


class TestGaussianRdpEmpirically:
    @pytest.mark.parametrize("sigma", [1.0, 2.0])
    @pytest.mark.parametrize("alpha", [2.0, 4.0])
    def test_monte_carlo_matches_closed_form(self, sigma, alpha):
        closed_form = alpha / (2.0 * sigma**2)
        empirical = _empirical_renyi_gaussian(sigma, alpha)
        assert empirical == pytest.approx(closed_form, rel=0.05)

    def test_accountant_uses_the_same_quantity(self):
        sigma, alpha = 2.0, 4.0
        accountant = compute_rdp_sampled_gaussian(1.0, sigma, 1, [alpha])[0]
        empirical = _empirical_renyi_gaussian(sigma, alpha)
        assert accountant == pytest.approx(empirical, rel=0.05)


class TestMechanismOutputDistribution:
    def test_neighboring_outputs_shift_by_sensitivity(self):
        # Mechanism outputs on inputs differing by the sensitivity must be
        # two Gaussians one noise-calibrated unit apart.
        mechanism = GaussianMechanism(noise_multiplier=2.0, sensitivity=0.5)
        rng_a = np.random.default_rng(7)
        rng_b = np.random.default_rng(7)
        a = mechanism.add_noise(np.zeros(100_000), rng=rng_a)
        b = mechanism.add_noise(np.full(100_000, 0.5), rng=rng_b)
        # Identical noise stream: the difference is exactly the shift.
        assert np.allclose(b - a, 0.5)
        assert a.std() == pytest.approx(mechanism.stddev, rel=0.02)

    def test_privacy_loss_distribution_mean(self):
        # For Gaussians at distance d with std s, the privacy loss
        # log(dP/dQ) under P has mean d^2 / (2 s^2) (the KL divergence).
        sigma = 1.5
        rng = np.random.default_rng(11)
        x = rng.normal(1.0, sigma, size=300_000)  # samples from P = N(1, s^2)
        log_ratio = (2.0 * x - 1.0) / (2.0 * sigma**2)
        assert np.mean(log_ratio) == pytest.approx(1.0 / (2 * sigma**2), rel=0.05)
