"""Tests for repro.privacy.mechanisms."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.exceptions import ConfigError
from repro.privacy.mechanisms import (
    GaussianMechanism,
    LaplaceMechanism,
    RandomizedResponse,
    gaussian_sigma_for_epsilon_delta,
)


class TestGaussianSigmaCalibration:
    def test_matches_theorem(self):
        sigma = gaussian_sigma_for_epsilon_delta(1.0, 1e-5, sensitivity=1.0)
        assert sigma == pytest.approx(math.sqrt(2 * math.log(1.25e5)))

    def test_scales_with_sensitivity(self):
        a = gaussian_sigma_for_epsilon_delta(0.5, 1e-5, sensitivity=1.0)
        b = gaussian_sigma_for_epsilon_delta(0.5, 1e-5, sensitivity=2.0)
        assert b == pytest.approx(2 * a)

    def test_rejects_epsilon_above_one(self):
        with pytest.raises(ConfigError):
            gaussian_sigma_for_epsilon_delta(1.5, 1e-5)

    def test_rejects_bad_delta(self):
        with pytest.raises(ConfigError):
            gaussian_sigma_for_epsilon_delta(0.5, 0.0)


class TestGaussianMechanism:
    def test_stddev(self):
        mechanism = GaussianMechanism(noise_multiplier=2.0, sensitivity=0.5)
        assert mechanism.stddev == 1.0

    def test_zero_noise_is_identity(self):
        mechanism = GaussianMechanism(noise_multiplier=0.0)
        value = np.array([1.0, 2.0])
        assert np.array_equal(mechanism.add_noise(value, rng=0), value)

    def test_noise_statistics(self):
        mechanism = GaussianMechanism(noise_multiplier=2.0, sensitivity=1.0)
        noisy = mechanism.add_noise(np.zeros(200_000), rng=1)
        assert abs(noisy.mean()) < 0.05
        assert noisy.std() == pytest.approx(2.0, rel=0.02)

    def test_does_not_mutate_input(self):
        value = np.zeros(3)
        GaussianMechanism(noise_multiplier=1.0).add_noise(value, rng=0)
        assert np.array_equal(value, np.zeros(3))

    def test_epsilon_inverts_calibration(self):
        sigma = gaussian_sigma_for_epsilon_delta(0.5, 1e-5)
        mechanism = GaussianMechanism(noise_multiplier=sigma)
        assert mechanism.epsilon(1e-5) == pytest.approx(0.5)

    def test_negative_multiplier_rejected(self):
        with pytest.raises(ConfigError):
            GaussianMechanism(noise_multiplier=-1.0)


class TestLaplaceMechanism:
    def test_scale(self):
        mechanism = LaplaceMechanism(epsilon=0.5, sensitivity=2.0)
        assert mechanism.scale == 4.0

    def test_noise_statistics(self):
        mechanism = LaplaceMechanism(epsilon=1.0, sensitivity=1.0)
        noisy = mechanism.add_noise(np.zeros(200_000), rng=1)
        # Laplace(b) has std b * sqrt(2).
        assert noisy.std() == pytest.approx(math.sqrt(2.0), rel=0.02)

    def test_rejects_nonpositive_epsilon(self):
        with pytest.raises(ConfigError):
            LaplaceMechanism(epsilon=0.0)


class TestRandomizedResponse:
    def test_truth_probability(self):
        rr = RandomizedResponse(epsilon=math.log(3.0))
        assert rr.truth_probability == pytest.approx(0.75)

    def test_flip_rate(self):
        rr = RandomizedResponse(epsilon=math.log(3.0))
        bits = np.ones(100_000, dtype=bool)
        reported = rr.randomize(bits, rng=3)
        assert reported.mean() == pytest.approx(0.75, abs=0.01)

    def test_frequency_estimation_debiases(self):
        rr = RandomizedResponse(epsilon=1.0)
        true_frequency = 0.3
        rng = np.random.default_rng(9)
        bits = rng.random(200_000) < true_frequency
        reported = rr.randomize(bits, rng=rng)
        assert rr.estimate_frequency(reported) == pytest.approx(true_frequency, abs=0.01)
