"""Tests for the zCDP accountant."""

from __future__ import annotations

import math

import pytest

from repro.exceptions import ConfigError
from repro.privacy.accountant import compute_epsilon
from repro.privacy.accountant.zcdp import (
    compose_zcdp,
    epsilon_to_zcdp,
    gaussian_steps_epsilon_zcdp,
    gaussian_zcdp,
    zcdp_to_epsilon,
)


class TestGaussianZcdp:
    def test_closed_form(self):
        assert gaussian_zcdp(1.0) == pytest.approx(0.5)
        assert gaussian_zcdp(2.0) == pytest.approx(0.125)

    def test_rejects_zero_noise(self):
        with pytest.raises(ConfigError):
            gaussian_zcdp(0.0)


class TestComposition:
    def test_additive(self):
        assert compose_zcdp([0.1, 0.2, 0.3]) == pytest.approx(0.6)

    def test_rejects_negative(self):
        with pytest.raises(ConfigError):
            compose_zcdp([0.1, -0.1])

    def test_empty_is_zero(self):
        assert compose_zcdp([]) == 0.0


class TestConversion:
    def test_formula(self):
        rho, delta = 0.25, 1e-5
        expected = rho + 2 * math.sqrt(rho * math.log(1.0 / delta))
        assert zcdp_to_epsilon(rho, delta) == pytest.approx(expected)

    def test_monotone_in_rho(self):
        assert zcdp_to_epsilon(0.1, 1e-5) < zcdp_to_epsilon(0.5, 1e-5)

    def test_epsilon_to_zcdp_round(self):
        assert epsilon_to_zcdp(2.0) == pytest.approx(2.0)
        assert epsilon_to_zcdp(0.0) == 0.0

    def test_invalid_delta(self):
        with pytest.raises(ConfigError):
            zcdp_to_epsilon(0.1, 0.0)


class TestGaussianSteps:
    def test_zero_steps(self):
        assert gaussian_steps_epsilon_zcdp(2.0, 0, 1e-5) == 0.0

    def test_rejects_subsampling(self):
        with pytest.raises(ConfigError):
            gaussian_steps_epsilon_zcdp(2.0, 10, 1e-5, sampling_probability=0.1)

    def test_comparable_to_rdp_accountant_unsampled(self):
        # Both accountants bound the same mechanism; they must land within
        # a small factor of each other for unsampled Gaussian composition.
        sigma, steps, delta = 4.0, 500, 1e-6
        zcdp_eps = gaussian_steps_epsilon_zcdp(sigma, steps, delta)
        rdp_eps = compute_epsilon(1.0, sigma, steps, delta)
        assert 0.5 < zcdp_eps / rdp_eps < 2.0

    def test_grows_with_steps(self):
        a = gaussian_steps_epsilon_zcdp(3.0, 10, 1e-5)
        b = gaussian_steps_epsilon_zcdp(3.0, 100, 1e-5)
        assert a < b
