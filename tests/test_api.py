"""Tests for the stable ``repro.api`` facade.

These exercise the four guaranteed names — ``train`` / ``load`` /
``evaluate`` / ``TrainedModel`` — through the package root, the way user
code is documented to call them.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.core.config import PLPConfig
from repro.exceptions import ConfigError
from repro.models.embeddings import EmbeddingMatrix
from repro.models.vocabulary import LocationVocabulary


def _tiny_model() -> repro.TrainedModel:
    rng = np.random.default_rng(3)
    embeddings = EmbeddingMatrix(rng.normal(size=(12, 6)))
    vocabulary = LocationVocabulary.from_locations(
        [f"poi-{i}" for i in range(12)], counts=[12 - i for i in range(12)]
    )
    return repro.TrainedModel(
        embeddings=embeddings, vocabulary=vocabulary, privacy={"epsilon": 2.0}
    )


def test_facade_names_exported_from_package_root():
    for name in ("train", "load", "evaluate", "TrainedModel"):
        assert name in repro.__all__
        assert callable(getattr(repro, name))


class TestTrainedModel:
    def test_recommend_and_batch_agree(self):
        model = _tiny_model()
        queries = [["poi-0", "poi-4"], ["poi-7"]]
        batched = model.recommend_batch(queries, top_k=3)
        assert batched == [model.recommend(q, top_k=3) for q in queries]

    def test_save_load_round_trip(self, tmp_path):
        model = _tiny_model()
        path = tmp_path / "model.npz"
        assert model.save(path, include_counts=True) is model
        loaded = repro.load(path)
        assert loaded.privacy == {"epsilon": 2.0}
        assert loaded.history is None
        assert loaded.vocabulary.count(0) == 12
        query = ["poi-1", "poi-2"]
        np.testing.assert_allclose(
            [s for _, s in loaded.recommend(query)],
            [s for _, s in model.recommend(query)],
        )

    def test_counts_stay_private_by_default(self, tmp_path):
        model = _tiny_model()
        path = tmp_path / "model.npz"
        model.save(path)
        assert repro.load(path).vocabulary.counts() == {}

    def test_recommender_options(self):
        model = _tiny_model()
        plain = model.recommender()
        assert plain.fallback_scores is None
        with_fallback = model.recommender(with_fallback=True)
        assert with_fallback.fallback_scores is not None
        assert np.isfinite(with_fallback.score_all(["nowhere"])).all()
        masked = model.recommender(exclude_input=True)
        top = [loc for loc, _ in masked.recommend(["poi-3"], top_k=11)]
        assert "poi-3" not in top


class TestTrain:
    def test_nonprivate_training_end_to_end(self, small_dataset):
        model = repro.train(
            {"embedding_dim": 8, "num_negatives": 2},
            small_dataset,
            method="nonprivate",
            rng=5,
            epochs=1,
        )
        assert isinstance(model, repro.TrainedModel)
        assert model.privacy["mechanism"] == "none"
        assert model.history is not None
        assert model.embeddings.dim == 8
        assert len(model.recommend(model.vocabulary.locations()[:2], top_k=3)) == 3

    def test_private_training_records_budget(self, small_dataset):
        config = PLPConfig(
            epsilon=2.0, embedding_dim=8, num_negatives=2, max_steps=3
        )
        model = repro.train(config, small_dataset, rng=5)
        assert model.privacy["mechanism"] == "plp"
        assert 0 < model.privacy["epsilon"] <= 2.0 + 1e-9
        assert model.privacy["steps"] == len(model.history)

    def test_invalid_inputs_raise_config_error(self, small_dataset):
        with pytest.raises(ConfigError):
            repro.train(method="magic", dataset=small_dataset)
        with pytest.raises(ConfigError):
            repro.train(config=42, dataset=small_dataset)
        with pytest.raises(ConfigError):
            repro.train({"no_such_field": 1}, small_dataset)


class TestEvaluate:
    def test_accepts_trained_model_and_trajectories(self, holdout_trajectories):
        model = _tiny_model_for(holdout_trajectories)
        result = repro.evaluate(model, holdout_trajectories, k_values=(1, 5))
        assert set(result.hit_rate) == {1, 5}
        assert result.num_cases > 0

    def test_accepts_raw_embeddings(self, holdout_trajectories):
        model = _tiny_model_for(holdout_trajectories)
        result_model = repro.evaluate(model, holdout_trajectories, k_values=(5,))
        from repro.types import Trajectory

        token_trajectories = [
            Trajectory(
                user=trajectory.user,
                locations=tuple(
                    model.vocabulary.encode_known(trajectory.locations)
                ),
            )
            for trajectory in holdout_trajectories
        ]
        result_matrix = repro.evaluate(
            model.embeddings, token_trajectories, k_values=(5,)
        )
        assert result_matrix.num_cases >= 1
        assert isinstance(result_model.mrr, float)

    def test_rejects_non_models(self, holdout_trajectories):
        with pytest.raises(ConfigError):
            repro.evaluate(object(), holdout_trajectories)


def _tiny_model_for(trajectories) -> repro.TrainedModel:
    vocabulary = LocationVocabulary.from_sequences(trajectories)
    rng = np.random.default_rng(9)
    embeddings = EmbeddingMatrix(rng.normal(size=(vocabulary.size, 6)))
    return repro.TrainedModel(embeddings=embeddings, vocabulary=vocabulary)
