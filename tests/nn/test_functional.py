"""Tests for repro.nn.functional, with hypothesis stability properties."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.nn.functional import (
    log_sigmoid,
    log_softmax,
    logsumexp,
    normalize_rows,
    one_hot,
    sigmoid,
    softmax,
)

_logit_rows = arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(1, 5), st.integers(2, 9)),
    elements=st.floats(-50, 50, allow_nan=False),
)


class TestSoftmax:
    def test_sums_to_one(self):
        probs = softmax(np.array([[1.0, 2.0, 3.0]]))
        assert probs.sum() == pytest.approx(1.0)

    def test_shift_invariance(self):
        x = np.array([1.0, 2.0, 3.0])
        assert np.allclose(softmax(x), softmax(x + 100.0))

    def test_extreme_values_stable(self):
        probs = softmax(np.array([1e4, 0.0, -1e4]))
        assert np.all(np.isfinite(probs))
        assert probs[0] == pytest.approx(1.0)

    @given(x=_logit_rows)
    @settings(max_examples=50, deadline=None)
    def test_rows_sum_to_one(self, x):
        probs = softmax(x, axis=1)
        assert np.allclose(probs.sum(axis=1), 1.0)
        assert np.all(probs >= 0)


class TestLogSoftmax:
    def test_consistent_with_softmax(self):
        x = np.array([[0.5, -1.0, 2.0]])
        assert np.allclose(np.exp(log_softmax(x)), softmax(x))

    @given(x=_logit_rows)
    @settings(max_examples=50, deadline=None)
    def test_always_nonpositive(self, x):
        assert np.all(log_softmax(x, axis=1) <= 1e-12)


class TestLogsumexp:
    def test_matches_naive_small_values(self):
        x = np.array([0.1, 0.2, 0.3])
        assert logsumexp(x) == pytest.approx(np.log(np.exp(x).sum()))

    def test_large_values_stable(self):
        assert logsumexp(np.array([1e4, 1e4])) == pytest.approx(1e4 + np.log(2.0))

    def test_keepdims(self):
        x = np.ones((2, 3))
        assert logsumexp(x, axis=1, keepdims=True).shape == (2, 1)


class TestSigmoid:
    def test_midpoint(self):
        assert sigmoid(np.array([0.0]))[0] == pytest.approx(0.5)

    def test_symmetric(self):
        x = np.array([1.7])
        assert sigmoid(x)[0] + sigmoid(-x)[0] == pytest.approx(1.0)

    def test_extreme_tails(self):
        values = sigmoid(np.array([-800.0, 800.0]))
        assert values[0] == 0.0
        assert values[1] == 1.0
        assert np.all(np.isfinite(values))

    @given(x=arrays(np.float64, st.integers(1, 20), elements=st.floats(-700, 700)))
    @settings(max_examples=50, deadline=None)
    def test_bounded(self, x):
        values = sigmoid(x)
        assert np.all(values >= 0.0)
        assert np.all(values <= 1.0)


class TestLogSigmoid:
    def test_matches_log_of_sigmoid(self):
        x = np.array([-3.0, 0.0, 3.0])
        assert np.allclose(log_sigmoid(x), np.log(sigmoid(x)))

    def test_negative_tail_linear(self):
        assert log_sigmoid(np.array([-500.0]))[0] == pytest.approx(-500.0)


class TestOneHot:
    def test_encoding(self):
        encoded = one_hot(np.array([0, 2]), depth=3)
        assert np.array_equal(encoded, [[1, 0, 0], [0, 0, 1]])

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            one_hot(np.array([3]), depth=3)
        with pytest.raises(ValueError):
            one_hot(np.array([-1]), depth=3)


class TestNormalizeRows:
    def test_unit_norms(self):
        matrix = np.array([[3.0, 4.0], [1.0, 0.0]])
        normalized = normalize_rows(matrix)
        assert np.allclose(np.linalg.norm(normalized, axis=1), 1.0)

    def test_zero_row_safe(self):
        normalized = normalize_rows(np.zeros((2, 3)))
        assert np.all(np.isfinite(normalized))

    def test_makes_cosine_equal_dot(self):
        rng = np.random.default_rng(0)
        matrix = normalize_rows(rng.normal(size=(4, 8)))
        dot = matrix @ matrix[0]
        cosine = (matrix @ matrix[0]) / (
            np.linalg.norm(matrix, axis=1) * np.linalg.norm(matrix[0])
        )
        assert np.allclose(dot, cosine)
