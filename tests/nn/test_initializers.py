"""Tests for repro.nn.initializers."""

from __future__ import annotations

import numpy as np

from repro.nn.initializers import (
    normal_init,
    uniform_embedding_init,
    xavier_uniform_init,
    zeros_init,
)


class TestUniformEmbeddingInit:
    def test_range(self):
        matrix = uniform_embedding_init((100, 50), rng=0)
        assert matrix.min() >= -0.5 / 50
        assert matrix.max() < 0.5 / 50

    def test_deterministic(self):
        a = uniform_embedding_init((5, 10), rng=7)
        b = uniform_embedding_init((5, 10), rng=7)
        assert np.array_equal(a, b)

    def test_shape(self):
        assert uniform_embedding_init((3, 4), rng=0).shape == (3, 4)


class TestXavierInit:
    def test_bound(self):
        matrix = xavier_uniform_init((64, 32), rng=0)
        bound = np.sqrt(6.0 / (64 + 32))
        assert np.abs(matrix).max() <= bound

    def test_one_dimensional(self):
        vector = xavier_uniform_init((10,), rng=0)
        assert vector.shape == (10,)


class TestNormalInit:
    def test_statistics(self):
        matrix = normal_init((200, 200), stddev=0.05, rng=0)
        assert abs(matrix.mean()) < 0.001
        assert matrix.std() == np.float64(matrix.std())
        assert abs(matrix.std() - 0.05) < 0.002


class TestZerosInit:
    def test_all_zero(self):
        assert not zeros_init((4, 4)).any()

    def test_rng_ignored(self):
        assert np.array_equal(zeros_init((2,), rng=1), zeros_init((2,), rng=2))
