"""Tests for the scatter-add primitive underlying sparse SGD updates."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.functional import scatter_add_rows


class TestScatterAddRows:
    def test_matches_add_at_2d(self):
        rng = np.random.default_rng(0)
        rows = rng.integers(0, 20, size=100)
        values = rng.normal(size=(100, 7))
        expected = np.zeros((20, 7))
        np.add.at(expected, rows, values)
        actual = np.zeros((20, 7))
        scatter_add_rows(actual, rows, values)
        assert np.allclose(actual, expected)

    def test_matches_add_at_1d(self):
        rng = np.random.default_rng(1)
        rows = rng.integers(0, 10, size=50)
        values = rng.normal(size=50)
        expected = np.zeros(10)
        np.add.at(expected, rows, values)
        actual = np.zeros(10)
        scatter_add_rows(actual, rows, values)
        assert np.allclose(actual, expected)

    def test_duplicates_accumulate(self):
        matrix = np.zeros((3, 2))
        scatter_add_rows(matrix, np.array([1, 1, 1]), np.ones((3, 2)))
        assert np.allclose(matrix[1], [3.0, 3.0])
        assert np.allclose(matrix[0], 0.0)

    def test_empty_rows_noop(self):
        matrix = np.ones((3, 2))
        scatter_add_rows(matrix, np.array([], dtype=np.int64), np.empty((0, 2)))
        assert np.allclose(matrix, 1.0)

    def test_single_row(self):
        matrix = np.zeros((3, 2))
        scatter_add_rows(matrix, np.array([2]), np.array([[5.0, 6.0]]))
        assert np.allclose(matrix[2], [5.0, 6.0])

    def test_adds_to_existing_content(self):
        matrix = np.full((4, 2), 10.0)
        scatter_add_rows(matrix, np.array([0, 0]), np.ones((2, 2)))
        assert np.allclose(matrix[0], 12.0)
        assert np.allclose(matrix[1], 10.0)

    @given(
        num_rows=st.integers(1, 12),
        num_updates=st.integers(1, 60),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=60, deadline=None)
    def test_equivalence_property(self, num_rows, num_updates, seed):
        rng = np.random.default_rng(seed)
        rows = rng.integers(0, num_rows, size=num_updates)
        values = rng.normal(size=(num_updates, 3))
        expected = np.zeros((num_rows, 3))
        np.add.at(expected, rows, values)
        actual = np.zeros((num_rows, 3))
        scatter_add_rows(actual, rows, values)
        assert np.allclose(actual, expected)
