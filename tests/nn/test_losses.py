"""Tests for candidate-sampling losses, including finite-difference checks.

The gradient correctness of these losses is the foundation of the entire
training stack, so each loss's analytic gradient is verified against
numerical differentiation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigError
from repro.nn.losses import (
    NegativeSamplingLoss,
    NoiseContrastiveEstimationLoss,
    SampledSoftmaxLoss,
    make_loss,
)


def _numerical_gradient(loss_fn, logits: np.ndarray, step: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of the loss w.r.t. the logits."""
    gradient = np.zeros_like(logits)
    for index in np.ndindex(logits.shape):
        bumped_up = logits.copy()
        bumped_up[index] += step
        bumped_down = logits.copy()
        bumped_down[index] -= step
        gradient[index] = (
            loss_fn.value_and_grad(bumped_up).loss
            - loss_fn.value_and_grad(bumped_down).loss
        ) / (2 * step)
    return gradient


_LOSSES = [
    SampledSoftmaxLoss(),
    NegativeSamplingLoss(),
    NoiseContrastiveEstimationLoss(num_locations=100),
]


@pytest.mark.parametrize("loss", _LOSSES, ids=lambda l: type(l).__name__)
class TestGradientCorrectness:
    def test_matches_finite_differences(self, loss):
        rng = np.random.default_rng(3)
        logits = rng.normal(scale=2.0, size=(4, 6))
        analytic = loss.value_and_grad(logits).grad_logits
        numerical = _numerical_gradient(loss, logits)
        assert np.allclose(analytic, numerical, atol=1e-6)

    def test_loss_finite_on_extreme_logits(self, loss):
        logits = np.array([[60.0, -60.0, 30.0], [-60.0, 60.0, 0.0]])
        output = loss.value_and_grad(logits)
        assert np.isfinite(output.loss)
        assert np.all(np.isfinite(output.grad_logits))

    def test_gradient_shape(self, loss):
        logits = np.zeros((3, 5))
        assert loss.value_and_grad(logits).grad_logits.shape == (3, 5)

    def test_rejects_single_column(self, loss):
        with pytest.raises(ConfigError):
            loss.value_and_grad(np.zeros((3, 1)))

    def test_rejects_one_dimensional(self, loss):
        with pytest.raises(ConfigError):
            loss.value_and_grad(np.zeros(5))


class TestSampledSoftmaxLoss:
    def test_uniform_logits_loss(self):
        # With equal logits over K candidates, loss is log(K).
        loss = SampledSoftmaxLoss().value_and_grad(np.zeros((2, 17))).loss
        assert loss == pytest.approx(np.log(17.0))

    def test_correct_prediction_low_loss(self):
        logits = np.array([[20.0, 0.0, 0.0]])
        assert SampledSoftmaxLoss().value_and_grad(logits).loss < 1e-6

    def test_gradient_pulls_positive_up(self):
        logits = np.zeros((1, 5))
        grad = SampledSoftmaxLoss().value_and_grad(logits).grad_logits
        assert grad[0, 0] < 0  # descending on logit 0 increases it
        assert np.all(grad[0, 1:] > 0)

    def test_gradient_rows_sum_to_zero(self):
        rng = np.random.default_rng(0)
        grad = SampledSoftmaxLoss().value_and_grad(rng.normal(size=(3, 4))).grad_logits
        assert np.allclose(grad.sum(axis=1), 0.0)


class TestNegativeSamplingLoss:
    def test_zero_logits_loss(self):
        # -log(1/2) per candidate, (1 + neg) candidates.
        loss = NegativeSamplingLoss().value_and_grad(np.zeros((2, 5))).loss
        assert loss == pytest.approx(5 * np.log(2.0))

    def test_separating_logits_low_loss(self):
        logits = np.array([[30.0, -30.0, -30.0]])
        assert NegativeSamplingLoss().value_and_grad(logits).loss < 1e-6

    def test_gradient_signs(self):
        grad = NegativeSamplingLoss().value_and_grad(np.zeros((1, 4))).grad_logits
        assert grad[0, 0] < 0
        assert np.all(grad[0, 1:] > 0)


class TestNceLoss:
    def test_correction_shifts_optimum(self):
        # With uniform noise over L and k negatives, the corrected logit for
        # a candidate with true probability p is log(p L / k); the loss at
        # logits == correction (raw logit 0 -> corrected -log(k/L)) differs
        # from the NS loss, demonstrating the correction is applied.
        nce = NoiseContrastiveEstimationLoss(num_locations=50)
        ns = NegativeSamplingLoss()
        logits = np.zeros((1, 5))
        assert nce.value_and_grad(logits).loss != pytest.approx(
            ns.value_and_grad(logits).loss
        )

    def test_requires_positive_vocab(self):
        with pytest.raises(ConfigError):
            NoiseContrastiveEstimationLoss(num_locations=0)


class TestMakeLoss:
    def test_factory_types(self):
        assert isinstance(make_loss("sampled_softmax"), SampledSoftmaxLoss)
        assert isinstance(make_loss("negative_sampling"), NegativeSamplingLoss)
        assert isinstance(make_loss("nce", 10), NoiseContrastiveEstimationLoss)

    def test_nce_requires_vocab(self):
        with pytest.raises(ConfigError):
            make_loss("nce")

    def test_unknown_rejected(self):
        with pytest.raises(ConfigError):
            make_loss("hinge")
