"""Tests for repro.nn.optimizers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigError
from repro.nn.optimizers import SGD, Adam, DPAdam, Momentum
from repro.nn.parameters import ParameterSet


def _quadratic_grad(params: ParameterSet) -> dict[str, np.ndarray]:
    """Gradient of f(x) = 0.5 ||x - 3||^2 per tensor."""
    return {name: params[name] - 3.0 for name in params.names()}


def _run(optimizer, steps: int = 300) -> ParameterSet:
    params = ParameterSet({"x": np.array([0.0, 10.0]), "y": np.array([[-5.0]])})
    for _ in range(steps):
        optimizer.step(params, _quadratic_grad(params))
    return params


class TestSGD:
    def test_single_step(self):
        params = ParameterSet({"x": np.array([1.0])})
        SGD(learning_rate=0.1).step(params, {"x": np.array([2.0])})
        assert params["x"][0] == pytest.approx(0.8)

    def test_converges_on_quadratic(self):
        params = _run(SGD(learning_rate=0.1))
        assert np.allclose(params["x"], 3.0, atol=1e-6)
        assert np.allclose(params["y"], 3.0, atol=1e-6)

    def test_rejects_bad_lr(self):
        with pytest.raises(ConfigError):
            SGD(learning_rate=0.0)


class TestMomentum:
    def test_converges_on_quadratic(self):
        params = _run(Momentum(learning_rate=0.05, momentum=0.9))
        assert np.allclose(params["x"], 3.0, atol=1e-4)

    def test_momentum_accelerates_first_steps(self):
        plain = ParameterSet({"x": np.array([0.0])})
        accelerated = ParameterSet({"x": np.array([0.0])})
        sgd = SGD(learning_rate=0.1)
        momentum = Momentum(learning_rate=0.1, momentum=0.9)
        for _ in range(3):
            sgd.step(plain, _quadratic_grad(plain))
            momentum.step(accelerated, _quadratic_grad(accelerated))
        assert accelerated["x"][0] > plain["x"][0]

    def test_reset_clears_velocity(self):
        optimizer = Momentum(learning_rate=0.1)
        params = ParameterSet({"x": np.array([0.0])})
        optimizer.step(params, {"x": np.array([1.0])})
        optimizer.reset()
        assert optimizer._velocity == {}

    def test_rejects_bad_momentum(self):
        with pytest.raises(ConfigError):
            Momentum(learning_rate=0.1, momentum=1.0)


class TestAdam:
    def test_converges_on_quadratic(self):
        params = _run(Adam(learning_rate=0.2), steps=500)
        assert np.allclose(params["x"], 3.0, atol=1e-3)

    def test_first_step_magnitude_is_lr(self):
        # With bias correction, the first Adam step is ~lr * sign(grad).
        params = ParameterSet({"x": np.array([0.0])})
        Adam(learning_rate=0.1).step(params, {"x": np.array([5.0])})
        assert params["x"][0] == pytest.approx(-0.1, rel=1e-6)

    def test_scale_invariance_of_steps(self):
        # Adam steps depend on gradient sign/shape, not magnitude.
        small = ParameterSet({"x": np.array([0.0])})
        large = ParameterSet({"x": np.array([0.0])})
        Adam(learning_rate=0.1).step(small, {"x": np.array([1e-3])})
        Adam(learning_rate=0.1).step(large, {"x": np.array([1e3])})
        assert small["x"][0] == pytest.approx(large["x"][0], rel=1e-4)

    def test_reset(self):
        optimizer = Adam()
        params = ParameterSet({"x": np.array([0.0])})
        optimizer.step(params, {"x": np.array([1.0])})
        optimizer.reset()
        assert optimizer._step_count == 0

    def test_rejects_bad_betas(self):
        with pytest.raises(ConfigError):
            Adam(beta1=1.0)
        with pytest.raises(ConfigError):
            Adam(beta2=-0.1)


class TestDPAdam:
    def test_is_adam_on_noisy_gradients(self):
        # DPAdam applies the same update rule; the DP guarantee comes from
        # the pre-noised input (post-processing).
        a = ParameterSet({"x": np.array([0.0])})
        b = ParameterSet({"x": np.array([0.0])})
        grad = {"x": np.array([2.0])}
        Adam(learning_rate=0.1).step(a, grad)
        DPAdam(learning_rate=0.1).step(b, grad)
        assert a["x"][0] == b["x"][0]
