"""Cross-backend equivalence: the contract of :mod:`repro.nn.backends`.

The backend protocol's promise (docs/kernels.md) has three tiers:

1. **Ledger bit-identity** — every backend produces the exact same
   privacy accounting (epsilon to the last bit) because clipping runs in
   float64 through the shared :func:`clip_bucket_delta` and the noise/
   accounting stages never see backend-dependent values.
2. **Reference exactness** — the ``reference`` backend reproduces the
   pre-backend implementation bit for bit (golden hash below).
3. **Bounded drift** — ``fast``/``numba`` embeddings stay within a
   documented float32 tolerance of the reference, across bucket sizes,
   negative-sample counts, and accumulation dtypes.
"""

from __future__ import annotations

import hashlib
import pickle
import warnings

import numpy as np
import pytest

import repro
from repro.core.bucket import _local_update_spec, build_bucket_batches
from repro.exceptions import ConfigError
from repro.models.skipgram import SkipGramModel
from repro.nn.backends import (
    NUMBA_AVAILABLE,
    FastBackend,
    NumbaBackend,
    ReferenceBackend,
    available_backends,
    get_backend,
)

#: Native (non-fallback) backends in this environment.
BACKENDS = list(available_backends())

#: Documented worst-case embedding drift of the float32 fused path vs the
#: float64 reference for a few local steps (see docs/kernels.md).
FLOAT32_DRIFT = 2e-3

GOLDEN_EMBEDDINGS_SHA256 = (
    "368e48a87d843759ec207045f3ae999829bd155f1b78805eb08e6a0036c58ebe"
)
GOLDEN_EPSILON_REPR = "0.6906504340143358"


def _train(backend: str):
    config = repro.PLPConfig(
        max_steps=3, sampling_probability=0.3, backend=backend
    )
    raw = repro.generate_checkins(
        repro.SyntheticConfig(num_users=120, num_locations=80), rng=5
    )
    dataset = repro.CheckinDataset(repro.paper_preprocessing(raw))
    return repro.train(config, dataset, rng=11)


@pytest.fixture(scope="module")
def trained():
    """One trained model per native backend, same data and seed."""
    return {backend: _train(backend) for backend in BACKENDS}


def _bucket_setup(num_negatives=16, num_pairs=300, seed=3, backend="reference"):
    rng = np.random.default_rng(seed)
    model = SkipGramModel(
        num_locations=200,
        embedding_dim=32,
        num_negatives=num_negatives,
        rng=np.random.default_rng(7),
        backend=backend,
    )
    pairs = rng.integers(0, 200, size=(num_pairs, 2))
    batches = build_bucket_batches(
        model, pairs, 32, rng=np.random.default_rng(17)
    )
    spec = _local_update_spec(model, 0.06, 0.5, "per_layer")
    return model, batches, spec


class TestGoldenReference:
    """The reference backend is the pre-backend implementation, exactly."""

    def test_reference_training_is_bit_identical_to_seed(self):
        model = repro.train(
            repro.PLPConfig(max_steps=4, sampling_probability=0.2), None, rng=11
        )
        digest = hashlib.sha256(
            np.ascontiguousarray(model.embeddings.matrix).tobytes()
        ).hexdigest()
        assert digest == GOLDEN_EMBEDDINGS_SHA256
        assert repr(model.privacy["epsilon"]) == GOLDEN_EPSILON_REPR


class TestLedgerBitIdentity:
    def test_privacy_ledger_identical_across_backends(self, trained):
        reference = trained["reference"].privacy
        for backend in BACKENDS[1:]:
            privacy = trained[backend].privacy
            assert set(privacy) == set(reference)
            for key, value in reference.items():
                assert repr(privacy[key]) == repr(value), (backend, key)

    def test_unclipped_norms_and_losses_are_finite(self):
        for backend in BACKENDS:
            model, batches, spec = _bucket_setup(backend=backend)
            delta = model.backend.fused_bucket_update(
                model.params, batches, spec
            )
            assert np.isfinite(delta.mean_loss)
            assert np.isfinite(delta.unclipped_norm)
            assert delta.num_batches == len(batches)


class TestEmbeddingDrift:
    def test_trained_embeddings_within_tolerance(self, trained):
        reference = trained["reference"].embeddings.matrix
        for backend in BACKENDS[1:]:
            matrix = trained[backend].embeddings.matrix
            drift = float(np.max(np.abs(matrix - reference)))
            assert drift < FLOAT32_DRIFT, (backend, drift)
            assert drift > 0.0  # float32 really is a different path

    @pytest.mark.parametrize("num_negatives", [1, 8, 40])
    @pytest.mark.parametrize("num_pairs", [1, 33, 500])
    def test_bucket_delta_equivalence(self, num_negatives, num_pairs):
        model_ref, batches_ref, spec = _bucket_setup(num_negatives, num_pairs)
        reference = model_ref.backend.fused_bucket_update(
            model_ref.params, batches_ref, spec
        )
        for backend in BACKENDS[1:]:
            model, batches, spec_b = _bucket_setup(
                num_negatives, num_pairs, backend=backend
            )
            delta = model.backend.fused_bucket_update(
                model.params, batches, spec_b
            )
            for name in reference.rows:
                assert np.array_equal(delta.rows[name], reference.rows[name])
                assert np.allclose(
                    delta.values[name],
                    reference.values[name],
                    atol=FLOAT32_DRIFT,
                    rtol=0,
                ), (backend, name)

    def test_float64_accumulation_matches_reference_tightly(self):
        """The drift is float32 accumulation, not the fused algorithm:
        running the fast backend's kernels in float64 lands within
        rounding distance of the reference."""

        class Float64Fast(FastBackend):
            accumulation_dtype = np.float64

        model, batches, spec = _bucket_setup()
        reference = model.backend.fused_bucket_update(
            model.params, batches, spec
        )
        delta = Float64Fast().fused_bucket_update(model.params, batches, spec)
        for name in reference.rows:
            assert np.array_equal(delta.rows[name], reference.rows[name])
            assert np.allclose(
                delta.values[name], reference.values[name], atol=1e-9, rtol=0
            )


class TestFusedChunkContract:
    """Chunk batching is an optimization, never a semantic change."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_multi_bucket_matches_single_bucket_bitwise(self, backend):
        rng = np.random.default_rng(3)
        model, _, spec = _bucket_setup(backend=backend)
        chunks = []
        for b in range(7):
            pairs = rng.integers(0, 200, size=(int(rng.integers(1, 160)), 2))
            chunks.append(
                build_bucket_batches(
                    model, pairs, 32, rng=np.random.default_rng(100 + b)
                )
            )
        multi = model.backend.fused_multi_bucket_update(
            model.params, chunks, spec
        )
        for i, batches in enumerate(chunks):
            single = model.backend.fused_bucket_update(
                model.params, batches, spec
            )
            for name in single.rows:
                assert np.array_equal(single.rows[name], multi[i].rows[name])
                assert np.array_equal(
                    single.values[name], multi[i].values[name]
                ), (backend, i, name)
            assert single.mean_loss == multi[i].mean_loss
            assert single.unclipped_norm == multi[i].unclipped_norm

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_empty_bucket_in_chunk(self, backend):
        model, batches, spec = _bucket_setup(backend=backend)
        deltas = model.backend.fused_multi_bucket_update(
            model.params, [[], batches, []], spec
        )
        assert deltas[0].num_batches == 0
        assert np.isnan(deltas[0].mean_loss)
        assert all(rows.size == 0 for rows in deltas[0].rows.values())
        assert deltas[1].num_batches == len(batches)
        assert deltas[2].num_batches == 0


class TestRegistry:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigError, match="unknown backend"):
            get_backend("cuda")

    def test_instances_are_cached_and_picklable(self):
        for backend in BACKENDS:
            instance = get_backend(backend)
            assert get_backend(backend) is instance
            clone = pickle.loads(pickle.dumps(instance))
            assert type(clone) is type(instance)

    @pytest.mark.skipif(NUMBA_AVAILABLE, reason="numba is installed")
    def test_numba_absent_falls_back_to_fast(self):
        with pytest.warns(RuntimeWarning, match="falling back"):
            backend = get_backend("numba")
        assert isinstance(backend, FastBackend)
        assert not isinstance(backend, NumbaBackend)
        assert "numba" not in available_backends()
        assert not NumbaBackend.is_compiled()

    @pytest.mark.skipif(NUMBA_AVAILABLE, reason="numba is installed")
    def test_numba_fallback_training_matches_fast(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            fallback = _train("numba")
        fast = _train("fast")
        assert np.array_equal(
            fallback.embeddings.matrix, fast.embeddings.matrix
        )

    def test_reference_is_float64(self):
        assert ReferenceBackend.accumulation_dtype == np.float64
        assert FastBackend.accumulation_dtype == np.float32
