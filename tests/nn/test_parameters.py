"""Tests for repro.nn.parameters."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.parameters import ParameterSet


@pytest.fixture()
def params() -> ParameterSet:
    return ParameterSet(
        {"W": np.arange(6, dtype=float).reshape(2, 3), "b": np.array([1.0, -1.0])}
    )


class TestConstruction:
    def test_copies_by_default(self, params):
        source = np.zeros((2, 2))
        param_set = ParameterSet({"x": source})
        param_set["x"][0, 0] = 9.0
        assert source[0, 0] == 0.0

    def test_no_copy_aliases(self):
        source = np.zeros((2, 2))
        param_set = ParameterSet({"x": source}, copy=False)
        param_set["x"][0, 0] = 9.0
        assert source[0, 0] == 9.0

    def test_casts_to_float64(self):
        param_set = ParameterSet({"x": np.array([1, 2], dtype=np.int32)})
        assert param_set["x"].dtype == np.float64


class TestMappingProtocol:
    def test_names_order(self, params):
        assert params.names() == ["W", "b"]

    def test_len_and_contains(self, params):
        assert len(params) == 2
        assert "W" in params
        assert "z" not in params

    def test_shapes(self, params):
        assert params.shapes() == {"W": (2, 3), "b": (2,)}

    def test_num_parameters(self, params):
        assert params.num_parameters == 8


class TestVectorOps:
    def test_copy_is_deep(self, params):
        clone = params.copy()
        clone["W"][0, 0] = 100.0
        assert params["W"][0, 0] == 0.0

    def test_zeros_like(self, params):
        zeros = params.zeros_like()
        assert zeros.shapes() == params.shapes()
        assert zeros.l2_norm() == 0.0

    def test_add_in_place(self, params):
        params.add_({"W": np.ones((2, 3)), "b": np.ones(2)}, scale=2.0)
        assert params["W"][0, 0] == 2.0
        assert params["b"][0] == 3.0

    def test_scale_in_place(self, params):
        params.scale_(0.5)
        assert params["b"][0] == 0.5

    def test_delta_from(self, params):
        reference = params.copy()
        params.add_({"W": np.ones((2, 3)), "b": np.zeros(2)})
        delta = params.delta_from(reference)
        assert np.allclose(delta["W"], 1.0)
        assert np.allclose(delta["b"], 0.0)

    def test_l2_norm_matches_concatenation(self, params):
        flat = np.concatenate([params["W"].ravel(), params["b"].ravel()])
        assert params.l2_norm() == pytest.approx(np.linalg.norm(flat))

    def test_per_tensor_norms(self, params):
        norms = params.per_tensor_norms()
        assert norms["b"] == pytest.approx(np.sqrt(2.0))

    def test_allclose(self, params):
        assert params.allclose(params.copy())
        other = params.copy()
        other["b"][0] += 1e-3
        assert not params.allclose(other)
