"""Fused fast-path speedup over the reference backend (bench tier).

Runs the same interleaved per-backend ``local_train`` measurement the
benchmark report uses (:func:`repro.bench.measure_kernel_speedup`) and
gates on the fast backend's speedup. On the 1-core CI box the measured
ratio at the default config is typically 3.8-4.7x (best observed 4.7x);
the assertion floor is set well below that band so scheduler noise —
which swings single runs by tens of percent — cannot flake the gate,
while still catching any real regression of the fused path.
"""

from __future__ import annotations

import pytest

from repro.bench import measure_kernel_speedup

pytestmark = pytest.mark.bench


def test_fast_backend_local_train_speedup():
    result = measure_kernel_speedup(repeats=3, seed=7)
    timings = result["local_train_seconds"]
    speedup = result["speedup_vs_reference"]["fast"]
    assert timings["fast"] < timings["reference"], result
    assert speedup >= 2.5, (
        "fast backend no longer delivers its documented speedup over "
        f"reference (measured {speedup:.2f}x, typical range 3.8-4.7x): "
        f"{result}"
    )
