"""Tests for the command-line interface (in-process invocation)."""

from __future__ import annotations

import json

import pytest

from repro.cli import _build_parser, _resolve_train_config, main
from repro.core.config import PLPConfig
from repro.exceptions import ConfigError


def _train_args(*extra):
    return _build_parser().parse_args(
        ["train", "--synthetic", "--out", "m.npz", *extra]
    )


@pytest.fixture()
def data_csv(tmp_path):
    """A small generated dataset on disk."""
    path = tmp_path / "checkins.csv"
    code = main(
        [
            "generate",
            "--users", "80",
            "--locations", "60",
            "--clusters", "6",
            "--mean-checkins", "25",
            "--seed", "3",
            "--out", str(path),
        ]
    )
    assert code == 0
    return path


@pytest.fixture()
def model_npz(tmp_path, data_csv):
    """A PLP model trained on the small dataset."""
    path = tmp_path / "model.npz"
    code = main(
        [
            "train",
            "--data", str(data_csv),
            "--method", "plp",
            "--epsilon", "5",
            "--sampling-probability", "0.2",
            "--embedding-dim", "8",
            "--num-negatives", "4",
            "--max-steps", "6",
            "--seed", "3",
            "--out", str(path),
        ]
    )
    assert code == 0
    return path


class TestGenerate:
    def test_writes_csv(self, data_csv, capsys):
        assert data_csv.exists()
        content = data_csv.read_text(encoding="utf-8")
        assert content.startswith("user,location,timestamp")


class TestTrain:
    def test_plp(self, model_npz):
        assert model_npz.exists()

    def test_dpsgd(self, tmp_path, data_csv):
        path = tmp_path / "dpsgd.npz"
        code = main(
            [
                "train",
                "--data", str(data_csv),
                "--method", "dpsgd",
                "--epsilon", "5",
                "--sampling-probability", "0.2",
                "--embedding-dim", "8",
                "--num-negatives", "4",
                "--max-steps", "4",
                "--out", str(path),
            ]
        )
        assert code == 0
        assert path.exists()

    def test_nonprivate(self, tmp_path, data_csv):
        path = tmp_path / "np.npz"
        code = main(
            [
                "train",
                "--data", str(data_csv),
                "--method", "nonprivate",
                "--embedding-dim", "8",
                "--epochs", "2",
                "--out", str(path),
            ]
        )
        assert code == 0
        assert path.exists()

    def test_missing_data_file(self, tmp_path, capsys):
        code = main(
            [
                "train",
                "--data", str(tmp_path / "nope.csv"),
                "--out", str(tmp_path / "m.npz"),
            ]
        )
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestTrainConfigResolution:
    def test_defaults_match_historical_cli_behaviour(self):
        config = _resolve_train_config(_train_args())
        assert config.learning_rate == 0.2  # CLI default, not PLPConfig's
        assert config.epsilon == 2.0
        assert config.num_negatives == 16

    def test_explicit_flags_apply(self):
        config = _resolve_train_config(
            _train_args("--epsilon", "5", "--embedding-dim", "8")
        )
        assert config.epsilon == 5.0
        assert config.embedding_dim == 8

    def test_config_file_round_trips_plpconfig_fields(self, tmp_path):
        path = tmp_path / "config.json"
        path.write_text(json.dumps({"epsilon": 3.0, "learning_rate": 0.06}))
        config = _resolve_train_config(_train_args("--config", str(path)))
        assert config.epsilon == 3.0
        # With --config the PLPConfig defaults apply, not the CLI's.
        assert config.learning_rate == 0.06
        assert config.num_negatives == PLPConfig().num_negatives

    def test_inline_json_config(self):
        config = _resolve_train_config(
            _train_args("--config", '{"embedding_dim": 10}')
        )
        assert config.embedding_dim == 10

    def test_explicit_flags_override_config(self, tmp_path):
        path = tmp_path / "config.json"
        path.write_text(json.dumps({"epsilon": 3.0, "embedding_dim": 10}))
        config = _resolve_train_config(
            _train_args("--config", str(path), "--epsilon", "7")
        )
        assert config.epsilon == 7.0
        assert config.embedding_dim == 10

    def test_unknown_config_field_rejected(self):
        with pytest.raises(ConfigError, match="unknown"):
            _resolve_train_config(_train_args("--config", '{"not_a_field": 1}'))

    def test_missing_config_file_rejected(self, tmp_path):
        with pytest.raises(ConfigError, match="not found"):
            _resolve_train_config(
                _train_args("--config", str(tmp_path / "nope.json"))
            )

    def test_non_object_config_rejected(self, tmp_path):
        path = tmp_path / "config.json"
        path.write_text("[1, 2]")
        with pytest.raises(ConfigError, match="JSON object"):
            _resolve_train_config(_train_args("--config", str(path)))
        with pytest.raises(ConfigError, match="JSON"):
            _resolve_train_config(_train_args("--config", "{not json"))

    def test_deprecated_negatives_alias_warns_and_applies(self):
        with pytest.warns(DeprecationWarning, match="--num-negatives"):
            args = _train_args("--negatives", "4")
        assert _resolve_train_config(args).num_negatives == 4

    def test_deprecated_kwarg_aliases_warn_through_with_overrides(self):
        with pytest.warns(DeprecationWarning, match="embedding_dim"):
            config = PLPConfig().with_overrides(dim=10)
        assert config.embedding_dim == 10
        with pytest.raises(ConfigError), pytest.warns(DeprecationWarning):
            # Alias and canonical name together is ambiguous.
            PLPConfig().with_overrides(dim=10, embedding_dim=12)


class TestServeParser:
    def test_serve_without_artifacts_is_a_config_error(self):
        from repro.cli import _serve_config_from_args

        args = _build_parser().parse_args(["serve"])
        with pytest.raises(ConfigError, match="nothing to serve"):
            _serve_config_from_args(args)

    def test_serve_defaults(self):
        args = _build_parser().parse_args(["serve", "m.npz"])
        assert args.mode == "fast"
        assert args.port == 8000
        assert args.max_batch == 64
        assert args.max_queue == 1024
        assert not args.ann
        assert not args.mmap
        assert not args.exclude_input
        assert not args.no_fallback

    def test_serve_builds_a_multi_model_config(self):
        from repro.cli import _serve_config_from_args

        args = _build_parser().parse_args(
            [
                "serve", "city=a.npz", "beach=b.npz",
                "--model", "city", "--ann", "--mmap", "--max-queue", "64",
            ]
        )
        config = _serve_config_from_args(args)
        assert config.artifacts == (("city", "a.npz"), ("beach", "b.npz"))
        assert config.default_model == "city"
        assert config.ann and config.mmap
        assert config.max_queue == 64

    def test_serve_bare_path_defaults_to_the_default_model(self):
        from repro.cli import _serve_config_from_args

        config = _serve_config_from_args(_build_parser().parse_args(["serve", "m.npz"]))
        assert config.artifacts == (("default", "m.npz"),)
        assert config.default_model == "default"

    def test_serve_ann_and_exact_are_mutually_exclusive(self, capsys):
        with pytest.raises(SystemExit):
            _build_parser().parse_args(["serve", "m.npz", "--ann", "--exact"])
        assert "--exact" in capsys.readouterr().err


class TestEvaluate:
    def test_prints_hit_rates(self, data_csv, model_npz, capsys):
        code = main(
            [
                "evaluate",
                "--data", str(data_csv),
                "--model", str(model_npz),
                "--holdout", "15",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "HR@10" in out


class TestRecommend:
    def test_prints_top_k(self, model_npz, capsys):
        code = main(
            ["recommend", "--model", str(model_npz), "--recent", "0,1", "--top-k", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "POI" in out
        assert out.count("\n") >= 3


class TestAudit:
    def test_reports_auc(self, data_csv, model_npz, capsys):
        code = main(
            [
                "audit",
                "--data", str(data_csv),
                "--model", str(model_npz),
                "--holdout", "15",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "MIA AUC" in out
        assert "epsilon" in out
