"""Tests for the command-line interface (in-process invocation)."""

from __future__ import annotations

import pytest

from repro.cli import main


@pytest.fixture()
def data_csv(tmp_path):
    """A small generated dataset on disk."""
    path = tmp_path / "checkins.csv"
    code = main(
        [
            "generate",
            "--users", "80",
            "--locations", "60",
            "--clusters", "6",
            "--mean-checkins", "25",
            "--seed", "3",
            "--out", str(path),
        ]
    )
    assert code == 0
    return path


@pytest.fixture()
def model_npz(tmp_path, data_csv):
    """A PLP model trained on the small dataset."""
    path = tmp_path / "model.npz"
    code = main(
        [
            "train",
            "--data", str(data_csv),
            "--method", "plp",
            "--epsilon", "5",
            "--sampling-probability", "0.2",
            "--embedding-dim", "8",
            "--negatives", "4",
            "--max-steps", "6",
            "--seed", "3",
            "--out", str(path),
        ]
    )
    assert code == 0
    return path


class TestGenerate:
    def test_writes_csv(self, data_csv, capsys):
        assert data_csv.exists()
        content = data_csv.read_text(encoding="utf-8")
        assert content.startswith("user,location,timestamp")


class TestTrain:
    def test_plp(self, model_npz):
        assert model_npz.exists()

    def test_dpsgd(self, tmp_path, data_csv):
        path = tmp_path / "dpsgd.npz"
        code = main(
            [
                "train",
                "--data", str(data_csv),
                "--method", "dpsgd",
                "--epsilon", "5",
                "--sampling-probability", "0.2",
                "--embedding-dim", "8",
                "--negatives", "4",
                "--max-steps", "4",
                "--out", str(path),
            ]
        )
        assert code == 0
        assert path.exists()

    def test_nonprivate(self, tmp_path, data_csv):
        path = tmp_path / "np.npz"
        code = main(
            [
                "train",
                "--data", str(data_csv),
                "--method", "nonprivate",
                "--embedding-dim", "8",
                "--epochs", "2",
                "--out", str(path),
            ]
        )
        assert code == 0
        assert path.exists()

    def test_missing_data_file(self, tmp_path, capsys):
        code = main(
            [
                "train",
                "--data", str(tmp_path / "nope.csv"),
                "--out", str(tmp_path / "m.npz"),
            ]
        )
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestEvaluate:
    def test_prints_hit_rates(self, data_csv, model_npz, capsys):
        code = main(
            [
                "evaluate",
                "--data", str(data_csv),
                "--model", str(model_npz),
                "--holdout", "15",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "HR@10" in out


class TestRecommend:
    def test_prints_top_k(self, model_npz, capsys):
        code = main(
            ["recommend", "--model", str(model_npz), "--recent", "0,1", "--top-k", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "POI" in out
        assert out.count("\n") >= 3


class TestAudit:
    def test_reports_auc(self, data_csv, model_npz, capsys):
        code = main(
            [
                "audit",
                "--data", str(data_csv),
                "--model", str(model_npz),
                "--holdout", "15",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "MIA AUC" in out
        assert "epsilon" in out
