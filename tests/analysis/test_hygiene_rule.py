"""DPL005 (accounting-hygiene) fixture tests."""

from repro.analysis import lint_source

from tests.analysis.helpers import lint_fixture, rule_ids

PATH = "src/repro/privacy/accountant/custom.py"
SELECT = ("DPL005",)


class TestHygieneFlags:
    def test_bad_fixture_fires(self):
        violations = lint_fixture("hygiene_bad.py", PATH, select=SELECT)
        assert rule_ids(violations) == {"DPL005"}
        # epsilon ==, delta !=, for-over-set, comprehension-over-set-comp.
        assert len(violations) == 4

    def test_attribute_epsilon_equality(self):
        source = "def f(a, b):\n    return a.epsilon == b.epsilon\n"
        violations = lint_source(source, path=PATH)
        assert any(v.rule_id == "DPL005" for v in violations)


class TestHygieneClean:
    def test_good_fixture_is_clean(self):
        assert lint_fixture("hygiene_good.py", PATH, select=SELECT) == []

    def test_len_of_deltas_is_not_a_budget_comparison(self):
        source = "def f(deltas):\n    return len(deltas) == 0\n"
        assert lint_source(source, path=PATH) == []

    def test_steps_is_not_epsilon(self):
        # "steps" contains the substring "eps" but is not a budget value.
        source = "def f(steps):\n    return steps == 0\n"
        assert lint_source(source, path=PATH) == []

    def test_ordered_budget_comparison_is_fine(self):
        source = "def f(spent, epsilon):\n    return spent >= epsilon\n"
        assert lint_source(source, path=PATH) == []
