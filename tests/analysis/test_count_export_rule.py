"""DPL004 (no-raw-count-export) fixture tests."""

from tests.analysis.helpers import lint_fixture, rule_ids

PATH = "src/repro/serving/payloads.py"
SELECT = ("DPL004",)


class TestCountExportFlags:
    def test_bad_fixture_fires(self):
        violations = lint_fixture("counts_bad.py", PATH, select=SELECT)
        assert rule_ids(violations) == {"DPL004"}
        # One subscript write + one dict-literal key.
        assert len(violations) == 2

    def test_serialization_module_is_in_scope(self):
        violations = lint_fixture(
            "counts_bad.py", "src/repro/models/serialization.py", select=SELECT
        )
        assert violations


class TestCountExportClean:
    def test_good_fixture_is_clean(self):
        assert lint_fixture("counts_good.py", PATH, select=SELECT) == []

    def test_out_of_scope_module_is_ignored(self):
        # Training-side code does not export payloads; the rule watches
        # the serving/serialization boundary only.
        violations = lint_fixture(
            "counts_bad.py", "src/repro/core/trainer.py", select=SELECT
        )
        assert violations == []

    def test_shipped_serialization_is_clean(self):
        from repro.analysis import lint_source

        from tests.analysis.helpers import REPO_ROOT

        relative = "src/repro/models/serialization.py"
        source = (REPO_ROOT / relative).read_text()
        violations = lint_source(source, path=relative)
        assert not [v for v in violations if v.rule_id == "DPL004"]


class TestPerPoiMetrics:
    def test_bad_fixture_fires(self):
        violations = lint_fixture("metrics_bad.py", PATH, select=SELECT)
        assert rule_ids(violations) == {"DPL004"}
        # Registration + .inc(poi=...) + add_completed(location=...).
        assert len(violations) == 3

    def test_observability_module_is_in_scope(self):
        violations = lint_fixture(
            "metrics_bad.py",
            "src/repro/observability/metrics.py",
            select=SELECT,
        )
        assert len(violations) == 3

    def test_good_fixture_is_clean(self):
        assert lint_fixture("metrics_good.py", PATH, select=SELECT) == []

    def test_shipped_metrics_modules_are_clean(self):
        from repro.analysis import lint_source

        from tests.analysis.helpers import REPO_ROOT

        for relative in (
            "src/repro/serving/metrics.py",
            "src/repro/observability/metrics.py",
            "src/repro/observability/hooks.py",
            "src/repro/observability/tracing.py",
        ):
            source = (REPO_ROOT / relative).read_text()
            violations = lint_source(source, path=relative)
            assert not [v for v in violations if v.rule_id == "DPL004"], relative
