"""Runner, output-format, and CLI integration tests for dplint."""

import json
import subprocess
import sys

import pytest

from repro.analysis import all_rules, lint_paths
from repro.analysis.runner import UsageError, main
from repro.analysis.violations import render_github, render_json, render_text

from tests.analysis.helpers import REPO_ROOT

SRC = str(REPO_ROOT / "src")


class TestShippedTree:
    def test_src_is_clean(self):
        assert lint_paths([SRC]) == []

    def test_main_exits_zero_on_src(self, capsys):
        assert main([SRC]) == 0
        assert "no violations" in capsys.readouterr().out

    def test_seeded_violation_is_nonzero(self, tmp_path, capsys):
        bad = tmp_path / "src" / "repro" / "core" / "seeded.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(
            "import numpy as np\n\ndef f():\n    return np.random.default_rng()\n"
        )
        assert main([str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "DPL001" in out and "seeded.py" in out

    def test_every_rule_registered(self):
        assert set(all_rules()) == {
            "DPL001",
            "DPL002",
            "DPL003",
            "DPL004",
            "DPL005",
            "DPL006",
            "DPL007",
            "DPL008",
        }


class TestFormats:
    @pytest.fixture()
    def violations(self, tmp_path):
        bad = tmp_path / "repro" / "serving" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("def f(payload, c):\n    payload['counts'] = c\n")
        return lint_paths([tmp_path])

    def test_text(self, violations):
        text = render_text(violations)
        assert "DPL004" in text and "1 violation found" in text

    def test_json(self, violations):
        document = json.loads(render_json(violations))
        assert document["count"] == 1
        assert document["violations"][0]["rule_id"] == "DPL004"
        assert document["violations"][0]["line"] == 2

    def test_github_annotations(self, violations):
        rendered = render_github(violations)
        assert rendered.startswith("::error file=")
        assert "title=DPL004" in rendered

    def test_parse_error_reported(self, tmp_path):
        broken = tmp_path / "broken.py"
        broken.write_text("def f(:\n")
        violations = lint_paths([tmp_path])
        assert violations[0].rule_id == "DPL000"


class TestCliSurfaces:
    def test_repro_lint_subcommand(self, capsys):
        from repro.cli import main as cli_main

        assert cli_main(["lint", SRC]) == 0
        assert "no violations" in capsys.readouterr().out

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "DPL003" in out and "clip-noise-account-order" in out

    def test_unknown_rule_is_usage_error(self, capsys):
        assert main(["--select", "DPL999", SRC]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_missing_path_is_usage_error(self, capsys):
        assert main(["definitely/not/here"]) == 2

    def test_select_and_ignore(self, tmp_path):
        bad = tmp_path / "repro" / "core" / "two.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(
            "import numpy as np\n"
            "def f(users):\n"
            "    g = np.random.default_rng()\n"
            "    return [g.random() for u in set(users)]\n"
        )
        only_rng = lint_paths([tmp_path], select=["DPL001"])
        assert {v.rule_id for v in only_rng} == {"DPL001"}
        without_rng = lint_paths([tmp_path], ignore=["DPL001"])
        assert "DPL001" not in {v.rule_id for v in without_rng}
        with pytest.raises(UsageError):
            lint_paths([tmp_path], select=["NOPE"])

    def test_exit_code_parity_between_entry_points(self, tmp_path, capsys):
        # repro lint and python -m repro.analysis share the runner module
        # end to end, so exit codes agree on clean, dirty, and usage-error
        # invocations alike.
        from repro.cli import main as cli_main

        bad = tmp_path / "repro" / "core" / "seeded.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(
            "import numpy as np\n\ndef f():\n    return np.random.default_rng()\n"
        )
        target = str(tmp_path)
        assert main([target]) == cli_main(["lint", target]) == 1
        assert (
            main(["--select", "DPL999", target])
            == cli_main(["lint", "--select", "DPL999", target])
            == 2
        )
        capsys.readouterr()

    @pytest.mark.slow
    def test_python_dash_m_entry_point(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro.analysis", SRC],
            capture_output=True,
            text=True,
            cwd=str(REPO_ROOT),
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin:/usr/local/bin"},
        )
        assert result.returncode == 0, result.stderr
        assert "no violations" in result.stdout


BAD_RNG = "import numpy as np\n\ndef f():\n    return np.random.default_rng()\n"


class TestChangedScope:
    @pytest.fixture()
    def git_repo(self, tmp_path):
        def git(*argv):
            subprocess.run(
                ["git", *argv],
                cwd=str(tmp_path),
                check=True,
                capture_output=True,
            )

        git("init")
        git("config", "user.email", "dev@example.com")
        git("config", "user.name", "dev")
        committed_bad = tmp_path / "repro" / "core" / "legacy.py"
        committed_bad.parent.mkdir(parents=True)
        committed_bad.write_text(BAD_RNG)
        git("add", "-A")
        git("commit", "-m", "seed")
        return tmp_path

    def test_only_changed_files_reported(self, git_repo):
        # legacy.py violates DPL001 but is committed and unchanged; the
        # untracked newcomer is the only file --changed reports on.
        new_bad = git_repo / "repro" / "core" / "fresh.py"
        new_bad.write_text(BAD_RNG)
        violations = lint_paths([git_repo], only_changed=True, cwd=git_repo)
        assert {v.path.rsplit("/", 1)[-1] for v in violations} == {"fresh.py"}
        full = lint_paths([git_repo])
        assert {v.path.rsplit("/", 1)[-1] for v in full} == {
            "fresh.py",
            "legacy.py",
        }

    def test_modified_tracked_file_reported(self, git_repo):
        legacy = git_repo / "repro" / "core" / "legacy.py"
        legacy.write_text(BAD_RNG + "\nVALUE = 1\n")
        violations = lint_paths([git_repo], only_changed=True, cwd=git_repo)
        assert {v.path.rsplit("/", 1)[-1] for v in violations} == {"legacy.py"}

    def test_unchanged_tree_reports_nothing(self, git_repo):
        assert lint_paths([git_repo], only_changed=True, cwd=git_repo) == []

    def test_program_context_spans_unchanged_files(self, git_repo):
        # The taint source sits in a committed file; only the sink file is
        # new. The flow is still found (the full tree is parsed for
        # program context) and reported at the changed file.
        def git(*argv):
            subprocess.run(
                ["git", *argv],
                cwd=str(git_repo),
                check=True,
                capture_output=True,
            )

        source_mod = git_repo / "a.py"
        source_mod.write_text(
            "def collect(store, user):\n    return store.history(user)\n"
        )
        git("add", "-A")
        git("commit", "-m", "source module")
        sink_mod = git_repo / "b.py"
        sink_mod.write_text(
            "from a import collect\n"
            "\n"
            "def export(store, user):\n"
            "    print(collect(store, user))\n"
        )
        violations = lint_paths(
            [git_repo], select=["DPL006"], only_changed=True, cwd=git_repo
        )
        assert len(violations) == 1
        assert violations[0].path.endswith("b.py")

    def test_changed_outside_git_is_usage_error(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("VALUE = 1\n")
        env_isolated = tmp_path / "not-a-repo"
        env_isolated.mkdir()
        with pytest.raises(UsageError):
            lint_paths([tmp_path], only_changed=True, cwd=env_isolated)
