"""DPL006 (sensitive-flow-to-export): taint reaches sinks, barriers clear it.

Also the suppression-precedence suite: an interprocedural finding is
silenced by a directive at the sink line, at the source line, or at any
mid-path witness site — the reviewed hop clears the whole flow.
"""

from __future__ import annotations

import textwrap

from repro.analysis import lint_source
from repro.analysis.runner import _select_rules, lint_paths
from repro.analysis.violations import render_text

from .helpers import lint_fixture, rule_ids

EXPORT_PATH = "src/repro/serving/handlers.py"
CORE_PATH = "src/repro/core/engine/stages.py"

DPL006 = _select_rules(select=("DPL006",))


class TestFlaggedFixture:
    def test_export_path_flags_every_leak(self):
        violations = lint_fixture("flow_bad.py", EXPORT_PATH, select=("DPL006",))
        assert rule_ids(violations) == {"DPL006"}
        assert len(violations) == 4

    def test_scoped_dumps_sink_inactive_outside_export_modules(self):
        # The serialization sinks (json.dumps) only apply under export
        # modules; the global sinks (_send_json, print, metric labels)
        # still fire from anywhere.
        violations = lint_fixture("flow_bad.py", CORE_PATH, select=("DPL006",))
        assert len(violations) == 3

    def test_interprocedural_findings_carry_witness_traces(self):
        violations = lint_fixture("flow_bad.py", EXPORT_PATH, select=("DPL006",))
        multi_hop = [v for v in violations if len(v.trace) >= 2]
        # export_artifact, respond, and record_metric all route through
        # collect_history/build_payload before hitting the sink.
        assert len(multi_hop) >= 3
        rendered = render_text(violations)
        assert "flow:" in rendered
        assert "CheckinStore.history" in rendered
        assert "collect_history" in rendered

    def test_messages_name_source_and_sink(self):
        violations = lint_fixture("flow_bad.py", EXPORT_PATH, select=("DPL006",))
        messages = " ".join(v.message for v in violations)
        assert "history" in messages
        assert "print" in messages


class TestCleanFixture:
    def test_sanitizers_declassifiers_and_guard_clear_taint(self):
        assert lint_fixture("flow_good.py", EXPORT_PATH, select=("DPL006",)) == []

    def test_clean_at_core_path_too(self):
        assert lint_fixture("flow_good.py", CORE_PATH, select=("DPL006",)) == []


def _lint(source: str, path: str = EXPORT_PATH):
    return lint_source(textwrap.dedent(source), path=path, rules=DPL006)


class TestSuppressionPrecedence:
    """Satellite: directives interact with interprocedural findings."""

    BASE = """\
        def collect(store, user):
            return store.history(user)

        def export(store, user):
            print(collect(store, user))
        """

    def test_unsuppressed_baseline_fires(self):
        assert len(_lint(self.BASE)) == 1

    def test_directive_at_sink_silences(self):
        source = self.BASE.replace(
            "print(collect(store, user))",
            "print(collect(store, user))  # dplint: disable=DPL006 -- audited",
        )
        assert _lint(source) == []

    def test_directive_at_source_silences(self):
        source = self.BASE.replace(
            "return store.history(user)",
            "return store.history(user)  # dplint: disable=DPL006 -- audited",
        )
        assert _lint(source) == []

    def test_directive_mid_path_silences(self):
        source = """\
            def collect(store, user):
                return store.history(user)

            def relay(store, user):
                rows = collect(store, user)  # dplint: disable=DPL006 -- audited
                return rows

            def export(store, user):
                print(relay(store, user))
            """
        assert _lint(source) == []

    def test_wrong_rule_id_does_not_silence(self):
        source = self.BASE.replace(
            "print(collect(store, user))",
            "print(collect(store, user))  # dplint: disable=DPL001 -- wrong id",
        )
        assert len(_lint(source)) == 1

    def test_cross_file_source_directive_silences(self, tmp_path):
        # The directive lives in the *source* module; the finding is
        # reported in the sink module. The trace walk crosses files.
        (tmp_path / "a.py").write_text(
            "def collect(store, user):\n"
            "    return store.history(user)  # dplint: disable=DPL006 -- audited\n",
            encoding="utf-8",
        )
        (tmp_path / "b.py").write_text(
            "from a import collect\n"
            "\n"
            "def export(store, user):\n"
            "    print(collect(store, user))\n",
            encoding="utf-8",
        )
        assert lint_paths([tmp_path], select=("DPL006",)) == []

    def test_cross_file_without_directive_fires(self, tmp_path):
        (tmp_path / "a.py").write_text(
            "def collect(store, user):\n    return store.history(user)\n",
            encoding="utf-8",
        )
        (tmp_path / "b.py").write_text(
            "from a import collect\n"
            "\n"
            "def export(store, user):\n"
            "    print(collect(store, user))\n",
            encoding="utf-8",
        )
        violations = lint_paths([tmp_path], select=("DPL006",))
        assert len(violations) == 1
        assert violations[0].path.endswith("b.py")
        # The witness trace reaches back into a.py.
        assert any(site.path.endswith("a.py") for site in violations[0].trace)
