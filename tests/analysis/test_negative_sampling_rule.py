"""DPL002 (uniform-negative-sampling) fixture tests."""

from repro.analysis import lint_source

from tests.analysis.helpers import lint_fixture, rule_ids

PATH = "src/repro/models/sampler.py"
SELECT = ("DPL002",)


class TestUniformNegativeSamplingFlags:
    def test_bad_fixture_fires(self):
        violations = lint_fixture("negatives_bad.py", PATH, select=SELECT)
        assert rule_ids(violations) == {"DPL002"}
        # counts-weighted choice, bincount dataflow, weighted sample_negatives.
        assert len(violations) == 3

    def test_dataflow_through_local_variable(self):
        source = (
            "def f(rng, n, checkin_frequencies):\n"
            "    w = checkin_frequencies / checkin_frequencies.sum()\n"
            "    return rng.choice(n, p=w)\n"
        )
        violations = lint_source(source, path=PATH)
        assert any(v.rule_id == "DPL002" for v in violations)

    def test_sample_negatives_with_any_weights(self):
        source = "def f(m, rng):\n    return m.sample_negatives(8, rng, p=[0.5, 0.5])\n"
        violations = lint_source(source, path=PATH)
        assert any(v.rule_id == "DPL002" for v in violations)


class TestUniformNegativeSamplingClean:
    def test_good_fixture_is_clean(self):
        assert lint_fixture("negatives_good.py", PATH, select=SELECT) == []

    def test_simulator_paths_are_out_of_scope(self):
        # The synthetic-data world model legitimately samples POIs by
        # popularity; the rule is scoped away from repro/data/.
        violations = lint_fixture(
            "negatives_bad.py", "src/repro/data/synthetic.py", select=SELECT
        )
        assert violations == []

    def test_shipped_skipgram_sampler_is_clean(self):
        from tests.analysis.helpers import REPO_ROOT

        source = (REPO_ROOT / "src/repro/models/skipgram.py").read_text()
        violations = lint_source(
            source, path="src/repro/models/skipgram.py"
        )
        assert not [v for v in violations if v.rule_id == "DPL002"]
