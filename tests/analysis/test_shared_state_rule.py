"""DPL007 (shared-state-locking): unlocked mutation of thread-shared state."""

from __future__ import annotations

import textwrap

from repro.analysis import lint_source
from repro.analysis.runner import _select_rules

from .helpers import lint_fixture, rule_ids

CORE_PATH = "src/repro/core/engine/stages.py"

DPL007 = _select_rules(select=("DPL007",))


def _lint(source: str):
    return lint_source(textwrap.dedent(source), path=CORE_PATH, rules=DPL007)


class TestFlaggedFixture:
    def test_unlocked_mutations_fire(self):
        violations = lint_fixture("shared_bad.py", CORE_PATH, select=("DPL007",))
        assert rule_ids(violations) == {"DPL007"}
        # record mutates two attributes unlocked; rename mutates one more
        # after releasing the lock.
        assert len(violations) == 3

    def test_messages_name_class_method_and_attribute(self):
        violations = lint_fixture("shared_bad.py", CORE_PATH, select=("DPL007",))
        messages = " ".join(v.message for v in violations)
        assert "SeriesRegistry" in messages
        assert "_series" in messages
        assert "_names" in messages
        assert "_flushed" in messages


class TestCleanFixture:
    def test_locked_and_documented_mutations_pass(self):
        assert lint_fixture("shared_good.py", CORE_PATH, select=("DPL007",)) == []


class TestPreconditions:
    def test_no_thread_evidence_means_no_findings(self):
        # Owning a lock is not by itself evidence of concurrency; without
        # any thread/pool construction in the program, the rule is silent.
        source = """\
            import threading

            class SeriesRegistry:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._series = {}

                def record(self, name, value):
                    self._series[name] = value
            """
        assert _lint(source) == []

    def test_cataloged_class_flagged_without_own_lock(self):
        # Classes in the shared-state catalog are checked even when they
        # do not construct a lock themselves.
        source = """\
            import threading

            class ModelRegistry:
                def __init__(self):
                    self._models = {}

                def publish(self, name, model):
                    self._models[name] = model

            def serve(registry):
                threading.Thread(target=registry.publish).start()
            """
        violations = _lint(source)
        assert len(violations) == 1
        assert "_models" in violations[0].message

    def test_single_writer_docstring_exempts_method(self):
        source = """\
            import threading

            class ModelRegistry:
                def __init__(self):
                    self._models = {}

                def publish(self, name, model):
                    \"\"\"Install a model (single-writer: loop thread only).\"\"\"
                    self._models[name] = model

            def serve(registry):
                threading.Thread(target=registry.publish).start()
            """
        assert _lint(source) == []
