"""DPL008 flagged fixture: fork/pickle-hostile objects cross the boundary."""

from concurrent.futures import ProcessPoolExecutor


class LeakySourceSpec:
    path: str
    shard_rng: object  # a live RNG declared as a spec field


def ship_spec(path, rng, log_file):
    # A live generator and an open file captured into the spec payload.
    return LeakySourceSpec(path, rng=rng, sink=log_file)


def submit_job(pool, job, state_lock):
    # A lock rides along in the worker submission.
    return pool.submit(run_job, job, state_lock)


def make_pool(shared_mmap):
    # An mmap handle shipped through the pool initializer.
    return ProcessPoolExecutor(max_workers=2, initargs=(shared_mmap,))


def run_job(job, lock):
    return job
