"""DPL007 clean fixture: locked mutations and documented single writers."""

import threading


class SeriesRegistry:
    """Shared between handler threads."""

    def __init__(self):
        self._lock = threading.Lock()
        self._series = {}
        self._names = []

    def record(self, name, value):
        with self._lock:
            self._series[name] = value
            self._names.append(name)

    def _store(self, name, value):
        """Insert a series entry (lock held by the caller)."""
        self._series[name] = value


class StepAccumulator:
    """Per-run scratch state.

    Concurrency: single-writer — only the coordinating loop thread
    touches an accumulator; worker threads get their own.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self.totals = []

    def add(self, value):
        self.totals.append(value)


def start_worker(registry):
    thread = threading.Thread(target=registry.record, args=("x", 1.0))
    thread.start()
    return thread
