"""DPL003 flagged fixture: broken clip/noise/account ordering."""

from repro.privacy.clipping import clip_parameters


def applies_before_noising(pipeline, aggregate, sigma, step_rng, ledger):
    pipeline.apply(aggregate)  # released BEFORE noise: voids the guarantee
    pipeline.noise(aggregate, sigma, step_rng)
    ledger.track_budget(1.0, sigma)


def applies_without_accounting(params, summed, sigma, step_rng):
    noised = {
        name: tensor + step_rng.normal(0.0, sigma, size=tensor.shape)
        for name, tensor in summed.items()
    }
    params.add_(noised)  # no ledger interaction anywhere in this body


def hard_coded_sigma(summed, step_rng):
    return {
        name: tensor + step_rng.normal(0.0, 2.5, size=tensor.shape)
        for name, tensor in summed.items()
    }


def noises_before_clipping(tensors, bound, step_rng, mechanism):
    noised = {name: mechanism.add_noise(v, step_rng) for name, v in tensors.items()}
    return clip_parameters(noised, bound)  # clip AFTER noise: wrong sensitivity


def noises_before_fused_update(backend, theta, bucket_batches, spec, sigma, step_rng):
    noised_theta = {
        name: tensor + step_rng.normal(0.0, sigma, size=tensor.shape)
        for name, tensor in theta.items()
    }
    # The fused kernel is the clip site; noising its *input* puts noise
    # before the clip, so sigma no longer matches the clipped sensitivity.
    return backend.fused_multi_bucket_update(noised_theta, bucket_batches, spec)
