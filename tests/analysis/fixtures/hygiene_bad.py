"""DPL005 flagged fixture: float equality on budgets, set iteration."""


def stop_when_budget_hit(history, config):
    return history.final_epsilon == config.epsilon  # float == on epsilon


def skip_zero_delta(step_delta):
    if step_delta != 0.0:  # float != on delta
        return step_delta
    return None


def aggregate_over_users(updates_by_user, sampled_users):
    total = 0.0
    for user in set(sampled_users):  # unordered iteration feeds a float sum
        total += updates_by_user[user]
    return total


def bucket_order(users):
    return [user for user in {u for u in users}]
