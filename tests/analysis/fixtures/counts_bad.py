"""DPL004 flagged fixture: raw counts written to exports without the opt-in."""


def save_artifact(vocabulary, payload):
    payload["counts"] = [vocabulary.count(t) for t in range(vocabulary.size)]
    return payload


def build_response(vocabulary, scores):
    return {
        "scores": scores,
        "visit_counts": list(vocabulary.raw_counts()),
    }
