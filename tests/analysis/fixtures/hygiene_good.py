"""DPL005 clean fixture: threshold comparisons and ordered iteration."""


def stop_when_budget_hit(history, config):
    return history.final_epsilon >= config.epsilon  # ordered comparison


def close_enough(epsilon_a, epsilon_b, tolerance=1e-9):
    return abs(epsilon_a - epsilon_b) <= tolerance


def aggregate_over_users(updates_by_user, sampled_users):
    total = 0.0
    for user in sorted(set(sampled_users)):  # deterministic order
        total += updates_by_user[user]
    return total


def membership_is_fine(users, user):
    return user in set(users)  # membership tests don't depend on order
