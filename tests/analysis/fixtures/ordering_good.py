"""DPL003 clean fixture: the Algorithm 1 step order, sigma from config."""

from repro.privacy.clipping import clip_parameters


def one_step(pipeline, config, executor, step, step_rng):
    sample = pipeline.sample(step_rng)
    group = pipeline.group(sample, step_rng)
    local = pipeline.local_train(step, group, executor)
    aggregate = pipeline.aggregate(local)
    sigma = config.noise_multiplier  # sourced from config, never a literal
    pipeline.noise(aggregate, sigma, step_rng)
    applied = pipeline.apply(
        aggregate, snapshot_needed=pipeline.budget_would_cross(sigma)
    )
    pipeline.account(sigma)
    return applied


def clip_then_noise(tensors, bound, sigma, step_rng):
    clipped = clip_parameters(tensors, bound)
    return {
        name: tensor + step_rng.normal(0.0, sigma, size=tensor.shape)
        for name, tensor in clipped.items()
    }


def fused_then_noise(backend, theta, bucket_batches, spec, sigma, step_rng, ledger):
    # The fused kernel clips every bucket delta internally, so calling it
    # before noising satisfies the clip -> noise ordering.
    deltas = backend.fused_multi_bucket_update(theta, bucket_batches, spec)
    noised = [
        delta + step_rng.normal(0.0, sigma, size=delta.shape) for delta in deltas
    ]
    ledger.track_budget(1.0, sigma)
    return noised
