"""DPL004 clean fixture: counts only behind the include_counts opt-in."""


def save_artifact(vocabulary, payload, include_counts=False):
    if include_counts:
        payload["counts"] = [vocabulary.count(t) for t in range(vocabulary.size)]
    return payload


def save_with_options(vocabulary, payload, options):
    if options.include_counts and vocabulary.size:
        payload["counts"] = [vocabulary.count(t) for t in range(vocabulary.size)]
    return payload


def load_artifact(payload):
    return payload.get("counts")  # reading an artifact back is fine


def telemetry_snapshot(aggregate):
    # Operational request counters are not visit counts.
    return {"count": aggregate.count, "mean_seconds": aggregate.mean}
