"""DPL006 clean fixture: every export is sanitized, declassified, or gated."""

import json


def collect_history(store, user):
    return store.history(user)


def export_noised(store, user, out, backend):
    # Sanitizer clears taint: noise application is the DP mechanism.
    noised = backend.add_noise(collect_history(store, user))
    out.write(json.dumps(noised))


def log_aggregates(store):
    # Declassifiers: reviewed aggregate surfaces, call- and attribute-style.
    print(store.stats())
    print(f"{store.num_users} users / {store.num_checkins} check-ins")


def export_counts(store, user, out, options):
    # The include_counts opt-in gates the sink site.
    if options.include_counts:
        out.write(json.dumps(collect_history(store, user)))


def respond_model_output(handler, recommender, user):
    # Model outputs are post-processing of the DP mechanism.
    scores = recommender.fit(user)
    _send_json(handler, {"scores": scores})


def _send_json(handler, payload):
    handler.wfile.write(json.dumps(payload).encode())
