"""DPL004 flagged fixture: per-POI count metrics without the opt-in gate."""


def build_observer(registry):
    poi_counter = registry.counter(
        "repro_serving_poi_recommended_total",
        "Top-1 recommendations by POI id",
    )
    return poi_counter


def record_hit(metrics, poi_id):
    metrics.hits.inc(poi=str(poi_id))


def trace_answer(tracer, latency, location_id):
    tracer.add_completed("serving.request", latency, location=location_id)
