"""DPL001 flagged fixture: ad-hoc generators and global RNG state."""

import random

import numpy as np
from numpy.random import default_rng


def fresh_generator_per_call(values):
    rng = np.random.default_rng()  # unmanaged stream
    return rng.permutation(values)


def legacy_global_draw(n):
    np.random.seed(0)  # global state
    return np.random.rand(n)  # legacy global draw


def renamed_import(seed):
    return default_rng(seed)  # same constructor, hidden behind from-import


def stdlib_random(candidates):
    return random.choice(candidates)  # hidden global stdlib state
