"""DPL008 clean fixture: only plain data and seed material cross the boundary."""

from concurrent.futures import ProcessPoolExecutor


class PathSourceSpec:
    path: str
    locations: tuple
    window: int


def ship_spec(path, locations, window):
    return PathSourceSpec(path, locations=locations, window=window)


def submit_job(pool, spec, jobs, seeds):
    # Pre-derived SeedSequence material is the sanctioned payload.
    return pool.submit(run_chunk, spec, jobs, seeds)


def make_pool(spec, fault_marker):
    return ProcessPoolExecutor(max_workers=2, initargs=(spec, fault_marker))


def run_chunk(spec, jobs, seeds):
    return jobs
