"""DPL002 clean fixture: uniform candidate sampling."""


def uniform_integers(rng, num_locations, batch, neg):
    return rng.integers(0, num_locations, size=(batch, neg))


def unweighted_choice(rng, num_locations):
    return rng.choice(num_locations, size=16, replace=True)


def weighted_but_not_frequency_derived(rng, candidates, mixture):
    # Weights from a synthetic mixture model, not from check-in data.
    return rng.choice(candidates, p=mixture)
