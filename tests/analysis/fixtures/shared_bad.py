"""DPL007 flagged fixture: unlocked mutation of thread-shared state.

The module spawns threads, so the program-wide concurrency precondition
holds; ``SeriesRegistry`` owns a lock (auto-detected, no catalog entry
needed) but mutates shared dictionaries outside it.
"""

import threading


class SeriesRegistry:
    """Shared between handler threads."""

    def __init__(self):
        self._lock = threading.Lock()
        self._series = {}
        self._names = []

    def record(self, name, value):
        self._series[name] = value  # mutation outside the lock
        self._names.append(name)  # mutator call outside the lock

    def rename(self, old, new):
        with self._lock:
            self._series[new] = self._series.pop(old)
        self._flushed = False  # mutation after the lock was released


def start_worker(registry):
    thread = threading.Thread(target=registry.record, args=("x", 1.0))
    thread.start()
    return thread
