"""DPL006 flagged fixture: raw per-user history flows to export sinks.

Linted under an export-module logical path (the tests pass one), so the
scoped ``dumps`` sink applies alongside the global ones.
"""

import json


def collect_history(store, user):
    # Return-tainted: the source call reaches the return expression.
    return store.history(user)


def build_payload(store, user):
    # Return-tainted transitively, through the local binding.
    rows = collect_history(store, user)
    return {"user": user, "rows": rows}


def export_artifact(store, user, out):
    # Sink: tainted data serialized into an artifact (interprocedural).
    payload = build_payload(store, user)
    out.write(json.dumps(payload))


def respond(handler, store, user):
    # Sink: tainted data into an HTTP payload, two hops from the source.
    _send_json(handler, build_payload(store, user))


def log_raw(store, user):
    # Sink: tainted data into a log string, direct from the source.
    print(store.history(user))


def record_metric(metrics, store, user):
    # Sink: tainted data as a metric label value (kwargs-only sink).
    rows = collect_history(store, user)
    metrics.inc(1.0, location=rows[0])


def _send_json(handler, payload):
    handler.wfile.write(json.dumps(payload).encode())
