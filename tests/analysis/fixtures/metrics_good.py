"""DPL004 clean fixture: per-POI metrics gated, operational metrics free."""


def build_observer(registry, include_counts=False):
    if include_counts:
        # Opt-in live-traffic telemetry, documented as unprotected.
        poi_counter = registry.counter(
            "repro_serving_poi_recommended_total",
            "Top-1 recommendations by POI id (include_counts opt-in)",
        )
    else:
        poi_counter = None
    return poi_counter


def record_hit(metrics, poi_id):
    if metrics.include_counts:
        metrics.hits.inc(poi=str(poi_id))


def operational_metrics(registry, status, seconds):
    # No POI in the name or labels: plain operational telemetry.
    requests = registry.counter("repro_serving_requests_total", "Requests")
    requests.inc(status=status)
    registry.histogram("repro_serving_request_seconds", "Latency").observe(
        seconds, stage="score"
    )
