"""DPL002 flagged fixture: frequency-weighted candidate sampling."""

import numpy as np


def weighted_by_visit_counts(rng, num_locations, visit_counts):
    probabilities = visit_counts / visit_counts.sum()
    return rng.choice(num_locations, size=16, p=probabilities)


def weighted_via_bincount_dataflow(rng, tokens, num_locations):
    per_location = np.bincount(tokens, minlength=num_locations).astype(float)
    weights = per_location / per_location.sum()
    return rng.choice(num_locations, size=16, p=weights)


def sample_negatives_must_stay_uniform(model, rng, popularity):
    return model.sample_negatives(64, rng, weights=popularity)
