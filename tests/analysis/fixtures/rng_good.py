"""DPL001 clean fixture: explicit generators and derived sub-streams."""

import numpy as np

from repro.rng import derive, ensure_rng


def draws_from_passed_generator(rng: np.random.Generator, n: int):
    return rng.random(n)  # drawing from an explicit Generator is the contract


def derives_substream(root, step: int, bucket: int):
    return derive(root, step, bucket).normal(0.0, 1.0)


def coerces_seed(seed):
    return ensure_rng(seed)
