"""Suppression fixture: every violation here carries a dplint directive."""

import numpy as np


def inline_suppression(seed):
    return np.random.default_rng(seed)  # dplint: disable=DPL001 -- fixture demo


def next_line_suppression(seed):
    # dplint: disable-next=DPL001 -- fixture demo of the next-line form
    return np.random.default_rng(seed)


def unsuppressed(seed):
    return np.random.default_rng(seed)
