"""DPL008 (fork-pickle-safety): live handles must not cross process forks."""

from __future__ import annotations

import textwrap

from repro.analysis import lint_source
from repro.analysis.runner import _select_rules

from .helpers import lint_fixture, rule_ids

CORE_PATH = "src/repro/core/engine/executors.py"

DPL008 = _select_rules(select=("DPL008",))


def _lint(source: str):
    return lint_source(textwrap.dedent(source), path=CORE_PATH, rules=DPL008)


class TestFlaggedFixture:
    def test_every_unsafe_payload_fires(self):
        violations = lint_fixture("fork_bad.py", CORE_PATH, select=("DPL008",))
        assert rule_ids(violations) == {"DPL008"}
        messages = " ".join(v.message for v in violations)
        # Spec field, spec kwarg value + name, submit arg, pool initargs.
        assert "shard_rng" in messages
        assert "rng" in messages
        assert "log_file" in messages
        assert "state_lock" in messages
        assert "shared_mmap" in messages
        assert len(violations) >= 5


class TestCleanFixture:
    def test_plain_data_and_seed_material_pass(self):
        assert lint_fixture("fork_good.py", CORE_PATH, select=("DPL008",)) == []


class TestBoundaryForms:
    def test_seed_sequences_are_sanctioned(self):
        source = """\
            def submit(pool, spec, seeds, seed_sequence):
                return pool.submit(run, spec, seeds, seed_sequence)
            """
        assert _lint(source) == []

    def test_kwarg_name_alone_is_enough(self):
        # Even an innocuously-named value bound to a hostile kwarg name
        # signals intent to ship a handle.
        source = """\
            def ship(path, material):
                return ShardSourceSpec(path, rng=material)
            """
        violations = _lint(source)
        assert len(violations) == 1

    def test_suffix_match_catches_named_handles(self):
        source = """\
            def ship(path, checkin_mmap):
                return ShardSourceSpec(path, checkin_mmap)
            """
        violations = _lint(source)
        assert len(violations) == 1
        assert "checkin_mmap" in violations[0].message
