"""Scope-drift regression: rules cover the modules later PRs introduced.

The out-of-core PR added ``repro/data/store.py``, ``repro/data/synthetic.py``,
and ``repro/core/_pairs.py`` after the original dplint scopes were drawn.
These tests pin that the rules actually fire there, so future layout
changes cannot silently shrink coverage again.
"""

from __future__ import annotations

import pytest

from .helpers import lint_fixture, rule_ids

PR6_MODULES = (
    "src/repro/data/store.py",
    "src/repro/data/synthetic.py",
    "src/repro/core/_pairs.py",
)

# The serving API redesign added the wire layer and the ANN index; both
# export request/response payloads, so the export rules must keep firing
# there.
PR9_MODULES = (
    "src/repro/serving/api.py",
    "src/repro/serving/ann.py",
)


class TestRngDisciplineCoversNewModules:
    @pytest.mark.parametrize("path", PR6_MODULES)
    def test_dpl001_fires(self, path):
        violations = lint_fixture("rng_bad.py", path, select=("DPL001",))
        assert rule_ids(violations) == {"DPL001"}

    @pytest.mark.parametrize("path", PR6_MODULES)
    def test_dpl001_clean_fixture_passes(self, path):
        assert lint_fixture("rng_good.py", path, select=("DPL001",)) == []


class TestCountExportCoversStore:
    def test_dpl004_fires_in_store_module(self):
        violations = lint_fixture(
            "counts_bad.py", "src/repro/data/store.py", select=("DPL004",)
        )
        assert rule_ids(violations) == {"DPL004"}

    def test_dpl004_clean_fixture_passes_in_store_module(self):
        assert (
            lint_fixture(
                "counts_good.py", "src/repro/data/store.py", select=("DPL004",)
            )
            == []
        )

    def test_dpl004_still_scoped_out_of_non_export_modules(self):
        # The synthetic generator neither serves nor serializes; DPL004
        # deliberately does not apply there.
        assert (
            lint_fixture(
                "counts_bad.py", "src/repro/data/synthetic.py", select=("DPL004",)
            )
            == []
        )


class TestCountExportCoversServingWireModules:
    """DPL004 fires in the PR-9 wire/ANN modules (``repro/serving/`` scope)."""

    @pytest.mark.parametrize("path", PR9_MODULES)
    def test_dpl004_fires(self, path):
        violations = lint_fixture("counts_bad.py", path, select=("DPL004",))
        assert rule_ids(violations) == {"DPL004"}

    @pytest.mark.parametrize("path", PR9_MODULES)
    def test_dpl004_clean_fixture_passes(self, path):
        assert lint_fixture("counts_good.py", path, select=("DPL004",)) == []


class TestSensitiveFlowCoversServingWireModules:
    """DPL006's export-module sinks (serialization) apply to the new files."""

    @pytest.mark.parametrize("path", PR9_MODULES)
    def test_dpl006_export_sinks_fire(self, path):
        violations = lint_fixture("flow_bad.py", path, select=("DPL006",))
        assert rule_ids(violations) == {"DPL006"}
        # All four leaks, including the serialization (json.dumps) sink
        # that is only active inside export modules.
        assert len(violations) == 4

    @pytest.mark.parametrize("path", PR9_MODULES)
    def test_dpl006_clean_fixture_passes(self, path):
        assert lint_fixture("flow_good.py", path, select=("DPL006",)) == []
