"""DPL003 (clip-noise-account-order) fixture tests."""

from repro.analysis import lint_source

from tests.analysis.helpers import lint_fixture, rule_ids

PATH = "src/repro/core/engine/custom_engine.py"
SELECT = ("DPL003",)


class TestOrderingFlags:
    def test_bad_fixture_fires(self):
        violations = lint_fixture("ordering_bad.py", PATH, select=SELECT)
        assert rule_ids(violations) == {"DPL003"}

    def test_apply_before_noise(self):
        violations = lint_fixture("ordering_bad.py", PATH, select=SELECT)
        assert any("applied before" in v.message for v in violations)

    def test_missing_ledger_interaction(self):
        violations = lint_fixture("ordering_bad.py", PATH, select=SELECT)
        assert any("without any ledger" in v.message for v in violations)

    def test_literal_sigma(self):
        violations = lint_fixture("ordering_bad.py", PATH, select=SELECT)
        assert any("hard-coded literal" in v.message for v in violations)

    def test_noise_before_clip(self):
        violations = lint_fixture("ordering_bad.py", PATH, select=SELECT)
        assert any("before clipping" in v.message for v in violations)

    def test_literal_gaussian_mechanism_multiplier(self):
        source = (
            "from repro.privacy.mechanisms import GaussianMechanism\n"
            "def f():\n"
            "    return GaussianMechanism(noise_multiplier=2.5)\n"
        )
        violations = lint_source(source, path=PATH)
        assert any(v.rule_id == "DPL003" for v in violations)


class TestOrderingClean:
    def test_good_fixture_is_clean(self):
        assert lint_fixture("ordering_good.py", PATH, select=SELECT) == []

    def test_out_of_scope_module_is_ignored(self):
        violations = lint_fixture(
            "ordering_bad.py", "src/repro/data/loader.py", select=SELECT
        )
        assert violations == []

    def test_shipped_engine_is_clean(self):
        from tests.analysis.helpers import REPO_ROOT

        for relative in (
            "src/repro/core/engine/engine.py",
            "src/repro/core/engine/stages.py",
            "src/repro/privacy/mechanisms.py",
        ):
            source = (REPO_ROOT / relative).read_text()
            violations = lint_source(source, path=relative)
            assert not [v for v in violations if v.rule_id == "DPL003"], relative
