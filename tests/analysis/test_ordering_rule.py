"""DPL003 (clip-noise-account-order) fixture tests."""

from repro.analysis import lint_source

from tests.analysis.helpers import lint_fixture, rule_ids

PATH = "src/repro/core/engine/custom_engine.py"
SELECT = ("DPL003",)


class TestOrderingFlags:
    def test_bad_fixture_fires(self):
        violations = lint_fixture("ordering_bad.py", PATH, select=SELECT)
        assert rule_ids(violations) == {"DPL003"}

    def test_apply_before_noise(self):
        violations = lint_fixture("ordering_bad.py", PATH, select=SELECT)
        assert any("applied before" in v.message for v in violations)

    def test_missing_ledger_interaction(self):
        violations = lint_fixture("ordering_bad.py", PATH, select=SELECT)
        assert any("without any ledger" in v.message for v in violations)

    def test_literal_sigma(self):
        violations = lint_fixture("ordering_bad.py", PATH, select=SELECT)
        assert any("hard-coded literal" in v.message for v in violations)

    def test_noise_before_clip(self):
        violations = lint_fixture("ordering_bad.py", PATH, select=SELECT)
        assert any("before clipping" in v.message for v in violations)

    def test_noise_before_fused_update_fires(self):
        # The fused kernel is a clip site, so noising its input is a
        # noise-before-clip violation on the fixture's last function.
        violations = lint_fixture("ordering_bad.py", PATH, select=SELECT)
        flagged_lines = {
            v.line for v in violations if "before clipping" in v.message
        }
        assert len(flagged_lines) >= 2  # classic variant + fused variant

    def test_literal_gaussian_mechanism_multiplier(self):
        source = (
            "from repro.privacy.mechanisms import GaussianMechanism\n"
            "def f():\n"
            "    return GaussianMechanism(noise_multiplier=2.5)\n"
        )
        violations = lint_source(source, path=PATH)
        assert any(v.rule_id == "DPL003" for v in violations)


class TestOrderingClean:
    def test_good_fixture_is_clean(self):
        assert lint_fixture("ordering_good.py", PATH, select=SELECT) == []

    def test_out_of_scope_module_is_ignored(self):
        violations = lint_fixture(
            "ordering_bad.py", "src/repro/data/loader.py", select=SELECT
        )
        assert violations == []

    def test_fused_clip_site_is_recognized(self):
        # A function that runs the fused kernel (internal clip) and only
        # then noises + accounts is the sanctioned ordering: no flag.
        source = (
            "def step(backend, theta, chunks, spec, config, step_rng, ledger):\n"
            "    deltas = backend.fused_multi_bucket_update(theta, chunks, spec)\n"
            "    sigma = config.noise_multiplier\n"
            "    noised = [d + step_rng.normal(0.0, sigma) for d in deltas]\n"
            "    ledger.track_budget(1.0, sigma)\n"
            "    return noised\n"
        )
        violations = lint_source(source, path=PATH)
        assert not [v for v in violations if v.rule_id == "DPL003"]

    def test_shipped_engine_is_clean(self):
        from tests.analysis.helpers import REPO_ROOT

        for relative in (
            "src/repro/core/engine/engine.py",
            "src/repro/core/engine/stages.py",
            "src/repro/privacy/mechanisms.py",
            # The widened scope covers the backend kernels: the fused
            # fast path must never trip the ordering rule itself.
            "src/repro/nn/backends/base.py",
            "src/repro/nn/backends/reference.py",
            "src/repro/nn/backends/fast.py",
            "src/repro/nn/backends/numba_backend.py",
        ):
            source = (REPO_ROOT / relative).read_text()
            violations = lint_source(source, path=relative)
            assert not [v for v in violations if v.rule_id == "DPL003"], relative
