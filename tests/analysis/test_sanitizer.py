"""dpsan: the runtime concurrency/determinism sanitizer.

Covers the draw log, single-writer detection teeth, bit-identity of
instrumented vs uninstrumented training, and clean uninstall.
"""

from __future__ import annotations

import threading

import pytest

import repro.rng as rng_module
from repro.analysis.sanitizer import MonitoredRLock, Sanitizer, SanitizerError
from repro.core.config import PLPConfig
from repro.core.trainer import PrivateLocationPredictor
from repro.data.checkins import CheckinDataset
from repro.data.synthetic import SyntheticConfig, generate_checkins
from repro.observability.metrics import MetricsRegistry
from repro.privacy.accountant import PrivacyLedger


@pytest.fixture(autouse=True)
def _standalone(_dpsan_session):
    """Stand the REPRO_DPSAN session sanitizer down for this module.

    These tests install and uninstall their own sanitizers to observe
    the patching lifecycle; a session-wide instance would make install
    refuse (nesting) and skew the before/after assertions.
    """
    if _dpsan_session is None:
        yield
        return
    _dpsan_session.uninstall()
    try:
        yield
    finally:
        _dpsan_session.install()


def _fast_config() -> PLPConfig:
    return PLPConfig(
        embedding_dim=8,
        num_negatives=4,
        sampling_probability=0.4,
        noise_multiplier=2.0,
        epsilon=50.0,
        grouping_factor=3,
        max_steps=2,
    )


def _corpus() -> CheckinDataset:
    return CheckinDataset(
        generate_checkins(
            SyntheticConfig(num_users=20, num_locations=30, num_clusters=3),
            rng=5,
        )
    )


def _train(sanitized: bool):
    data = _corpus()
    config = _fast_config()

    def run():
        trainer = PrivateLocationPredictor(config, rng=42, executor="serial")
        trainer.fit(data)
        return (
            trainer.model.params["W"].tobytes(),
            trainer.ledger.cumulative_budget_spent(),
        )

    if sanitized:
        with Sanitizer():
            return run()
    return run()


class TestDrawLog:
    def test_rng_draws_are_observed(self):
        with Sanitizer() as sanitizer:
            root = rng_module.derive_seed_sequence(7, 1, 2)
            rng_module.derive_seed_sequence(root, 3)
        events = sanitizer.draw_log.snapshot()
        assert ("derive", (1, 2)) in events
        assert ("derive", (3,)) in events

    def test_per_step_counts_key_on_leading_tag(self):
        with Sanitizer() as sanitizer:
            for step in (0, 0, 1):
                rng_module.derive_seed_sequence(9, step)
        assert sanitizer.draw_log.per_step_counts() == {0: 2, 1: 1}

    def test_observer_cleared_after_uninstall(self):
        with Sanitizer():
            assert rng_module._OBSERVER is not None
        assert rng_module._OBSERVER is None


class TestBitIdentity:
    def test_training_unchanged_under_instrumentation(self):
        plain_weights, plain_spend = _train(sanitized=False)
        sanitized_weights, sanitized_spend = _train(sanitized=True)
        assert plain_weights == sanitized_weights
        assert plain_spend == sanitized_spend


class TestDetectionTeeth:
    def test_cross_thread_ledger_write_raises(self):
        with Sanitizer():
            ledger = PrivacyLedger(delta=1e-4, sampling_probability=0.4)
            ledger.track_budget(clip_bound=1.0, noise_multiplier=2.0)
            caught: list[BaseException] = []

            def intrude():
                try:
                    ledger.track_budget(clip_bound=1.0, noise_multiplier=2.0)
                except BaseException as error:  # noqa: BLE001
                    caught.append(error)

            thread = threading.Thread(target=intrude, name="dpsan-intruder")
            thread.start()
            thread.join()
        assert len(caught) == 1
        assert isinstance(caught[0], SanitizerError)
        assert "dpsan-intruder" in str(caught[0])

    def test_same_thread_writes_stay_silent(self):
        with Sanitizer():
            ledger = PrivacyLedger(delta=1e-4, sampling_probability=0.4)
            ledger.track_budget(clip_bound=1.0, noise_multiplier=2.0)
            ledger.track_budget(clip_bound=1.0, noise_multiplier=2.0)

    def test_metrics_mutations_run_under_monitored_lock(self):
        with Sanitizer():
            registry = MetricsRegistry()
            assert isinstance(registry._lock, MonitoredRLock)
            counter = registry.counter("dpsan_test_total")
            before = registry._lock.acquisitions()
            counter.inc()
            assert registry._lock.acquisitions() > before

    def test_nested_install_refuses(self):
        with Sanitizer():
            with pytest.raises(SanitizerError):
                Sanitizer().install()


class TestUninstallRestoration:
    def test_patched_methods_restored(self):
        original_track = PrivacyLedger.__dict__["track_budget"]
        original_init = MetricsRegistry.__dict__["__init__"]
        with Sanitizer():
            assert PrivacyLedger.__dict__["track_budget"] is not original_track
            assert MetricsRegistry.__dict__["__init__"] is not original_init
        assert PrivacyLedger.__dict__["track_budget"] is original_track
        assert MetricsRegistry.__dict__["__init__"] is original_init

    def test_registries_built_after_uninstall_use_plain_locks(self):
        with Sanitizer():
            pass
        registry = MetricsRegistry()
        assert not isinstance(registry._lock, MonitoredRLock)
