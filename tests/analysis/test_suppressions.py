"""Inline-suppression syntax tests."""

from repro.analysis import lint_source
from repro.analysis.suppressions import parse_suppressions

from tests.analysis.helpers import lint_fixture

PATH = "src/repro/core/somewhere.py"


class TestSuppressionForms:
    def test_only_unsuppressed_violation_survives(self):
        violations = lint_fixture("suppressed.py", PATH, select=("DPL001",))
        assert len(violations) == 1
        assert violations[0].line > 1  # the one in unsuppressed()

    def test_inline_same_line(self):
        source = (
            "import numpy as np\n"
            "g = np.random.default_rng(0)  # dplint: disable=DPL001 -- demo\n"
        )
        assert lint_source(source, path=PATH) == []

    def test_disable_next_line(self):
        source = (
            "import numpy as np\n"
            "# dplint: disable-next=DPL001 -- demo\n"
            "g = np.random.default_rng(0)\n"
        )
        assert lint_source(source, path=PATH) == []

    def test_disable_file(self):
        source = (
            "# dplint: disable-file=DPL001 -- module-wide demo\n"
            "import numpy as np\n"
            "g = np.random.default_rng(0)\n"
            "h = np.random.default_rng(1)\n"
        )
        assert lint_source(source, path=PATH) == []

    def test_disable_all(self):
        source = (
            "import numpy as np\n"
            "g = np.random.default_rng(0)  # dplint: disable=all\n"
        )
        assert lint_source(source, path=PATH) == []

    def test_suppressing_one_rule_keeps_others(self):
        source = (
            "def f(history, config, users):\n"
            "    for u in set(users):  # dplint: disable=DPL001 -- wrong rule\n"
            "        pass\n"
        )
        violations = lint_source(source, path=PATH)
        assert [v.rule_id for v in violations] == ["DPL005"]

    def test_comma_separated_rules(self):
        parsed = parse_suppressions("x = 1  # dplint: disable=DPL001, DPL005\n")
        assert parsed.by_line[1] == {"DPL001", "DPL005"}

    def test_justification_text_is_tolerated(self):
        parsed = parse_suppressions(
            "# dplint: disable-file=DPL004 -- counts here are request counters\n"
        )
        assert parsed.file_level == {"DPL004"}
