"""Shared helpers for the dplint test suite."""

from __future__ import annotations

from pathlib import Path

from repro.analysis import Violation, lint_source
from repro.analysis.runner import _select_rules

FIXTURES = Path(__file__).parent / "fixtures"

#: Repo root (tests/analysis/helpers.py -> repo). Used by the tests that
#: lint the shipped tree itself.
REPO_ROOT = Path(__file__).resolve().parents[2]


def lint_fixture(
    name: str,
    path: str,
    select: tuple[str, ...] | None = None,
) -> list[Violation]:
    """Lint a fixture file as if it lived at logical ``path``.

    Args:
        name: file name under ``tests/analysis/fixtures/``.
        path: pretend source location — rule scoping and sanctioned-file
            allowlists key off it (e.g. ``"src/repro/core/engine/x.py"``).
        select: restrict to these rule ids (default: all rules).
    """
    source = (FIXTURES / name).read_text(encoding="utf-8")
    rules = _select_rules(select=select)
    return lint_source(source, path=path, rules=rules)


def rule_ids(violations: list[Violation]) -> set[str]:
    return {v.rule_id for v in violations}
