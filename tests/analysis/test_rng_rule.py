"""DPL001 (rng-discipline) fixture tests."""

from repro.analysis import lint_source

from tests.analysis.helpers import lint_fixture

PATH = "src/repro/core/somewhere.py"


class TestRngDisciplineFlags:
    def test_bad_fixture_fires(self):
        violations = lint_fixture("rng_bad.py", PATH, select=("DPL001",))
        assert violations, "flagged fixture must produce violations"
        assert all(v.rule_id == "DPL001" for v in violations)

    def test_every_bad_pattern_is_caught(self):
        violations = lint_fixture("rng_bad.py", PATH, select=("DPL001",))
        flagged_lines = {v.line for v in violations}
        # default_rng, seed, rand, renamed from-import, stdlib random.
        assert len(flagged_lines) >= 5

    def test_aliased_import_is_resolved(self):
        source = (
            "import numpy.random as nprandom\n"
            "def f():\n"
            "    return nprandom.default_rng(3)\n"
        )
        violations = lint_source(source, path=PATH)
        assert any(v.rule_id == "DPL001" for v in violations)

    def test_from_import_of_stdlib_random(self):
        source = "from random import shuffle\n\ndef f(x):\n    shuffle(x)\n"
        violations = lint_source(source, path=PATH)
        assert any(v.rule_id == "DPL001" for v in violations)


class TestRngDisciplineClean:
    def test_good_fixture_is_clean(self):
        assert lint_fixture("rng_good.py", PATH, select=("DPL001",)) == []

    def test_sanctioned_module_is_exempt(self):
        violations = lint_fixture(
            "rng_bad.py", "src/repro/rng.py", select=("DPL001",)
        )
        assert violations == []

    def test_annotations_do_not_fire(self):
        source = (
            "import numpy as np\n"
            "def f(rng: np.random.Generator) -> np.random.Generator:\n"
            "    return rng\n"
        )
        assert lint_source(source, path=PATH) == []

    def test_local_name_containing_random_is_not_confused(self):
        source = "def f(random_offsets):\n    return random_offsets.sum()\n"
        assert lint_source(source, path=PATH) == []
