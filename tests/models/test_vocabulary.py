"""Tests for repro.models.vocabulary."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import VocabularyError
from repro.models.vocabulary import LocationVocabulary


class TestConstruction:
    def test_from_sequences_first_appearance_order(self):
        vocabulary = LocationVocabulary.from_sequences([["b", "a"], ["a", "c"]])
        assert vocabulary.token("b") == 0
        assert vocabulary.token("a") == 1
        assert vocabulary.token("c") == 2
        assert vocabulary.size == 3

    def test_counts(self):
        vocabulary = LocationVocabulary.from_sequences([["a", "a", "b"]])
        assert vocabulary.count(vocabulary.token("a")) == 2
        assert vocabulary.count(vocabulary.token("b")) == 1

    def test_empty(self):
        vocabulary = LocationVocabulary()
        assert len(vocabulary) == 0
        assert "x" not in vocabulary


class TestLookup:
    def test_unknown_location_raises(self):
        vocabulary = LocationVocabulary.from_sequences([["a"]])
        with pytest.raises(VocabularyError):
            vocabulary.token("z")

    def test_token_out_of_range_raises(self):
        vocabulary = LocationVocabulary.from_sequences([["a"]])
        with pytest.raises(VocabularyError):
            vocabulary.location(5)

    def test_contains(self):
        vocabulary = LocationVocabulary.from_sequences([["a"]])
        assert "a" in vocabulary
        assert "b" not in vocabulary


class TestEncodeDecode:
    def test_round_trip(self):
        vocabulary = LocationVocabulary.from_sequences([["x", "y", "z"]])
        sequence = ["z", "x", "y", "x"]
        assert vocabulary.decode(vocabulary.encode(sequence)) == sequence

    def test_encode_known_drops_unknowns(self):
        vocabulary = LocationVocabulary.from_sequences([["a", "b"]])
        tokens = vocabulary.encode_known(["a", "mystery", "b"])
        assert tokens == [vocabulary.token("a"), vocabulary.token("b")]

    @given(
        sequence=st.lists(st.integers(0, 30), min_size=1, max_size=40),
    )
    @settings(max_examples=50, deadline=None)
    def test_round_trip_property(self, sequence):
        vocabulary = LocationVocabulary.from_sequences([sequence])
        assert vocabulary.decode(vocabulary.encode(sequence)) == sequence

    @given(sequence=st.lists(st.integers(0, 30), min_size=1, max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_tokens_contiguous(self, sequence):
        vocabulary = LocationVocabulary.from_sequences([sequence])
        tokens = sorted({vocabulary.token(loc) for loc in sequence})
        assert tokens == list(range(vocabulary.size))
