"""Tests for the deployable-model save/load round trip."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import DataError
from repro.models.embeddings import EmbeddingMatrix
from repro.models.serialization import (
    load_deployable_model,
    load_recommender,
    save_deployable_model,
)
from repro.models.vocabulary import LocationVocabulary


@pytest.fixture()
def artifact():
    rng = np.random.default_rng(0)
    embeddings = EmbeddingMatrix(rng.normal(size=(6, 4)))
    vocabulary = LocationVocabulary.from_sequences(
        [["cafe", "bar", "gym", "park", "pier", "zoo"]]
    )
    return embeddings, vocabulary


class TestRoundTrip:
    def test_embeddings_and_vocabulary_preserved(self, tmp_path, artifact):
        embeddings, vocabulary = artifact
        path = tmp_path / "model.npz"
        save_deployable_model(path, embeddings, vocabulary, {"epsilon": 2.0})
        loaded_embeddings, loaded_vocabulary, privacy = load_deployable_model(path)
        assert np.allclose(loaded_embeddings.matrix, embeddings.matrix)
        assert loaded_vocabulary.size == 6
        for name in ("cafe", "zoo"):
            assert loaded_vocabulary.token(name) == vocabulary.token(name)
        assert privacy == {"epsilon": 2.0}

    def test_recommendations_identical_after_reload(self, tmp_path, artifact):
        embeddings, vocabulary = artifact
        path = tmp_path / "model.npz"
        save_deployable_model(path, embeddings, vocabulary)
        from repro.models.recommender import NextLocationRecommender

        original = NextLocationRecommender(embeddings, vocabulary=vocabulary)
        reloaded = load_recommender(path)
        original_recs = original.recommend(["cafe", "bar"], top_k=3)
        reloaded_recs = reloaded.recommend(["cafe", "bar"], top_k=3)
        assert [name for name, _ in original_recs] == [
            name for name, _ in reloaded_recs
        ]
        assert [score for _, score in original_recs] == pytest.approx(
            [score for _, score in reloaded_recs]
        )

    def test_default_privacy_metadata_empty(self, tmp_path, artifact):
        embeddings, vocabulary = artifact
        path = tmp_path / "model.npz"
        save_deployable_model(path, embeddings, vocabulary)
        _, _, privacy = load_deployable_model(path)
        assert privacy == {}

    def test_creates_parent_directories(self, tmp_path, artifact):
        embeddings, vocabulary = artifact
        path = tmp_path / "deep" / "nested" / "model.npz"
        save_deployable_model(path, embeddings, vocabulary)
        assert path.exists()


class TestCountsAndFallback:
    def test_counts_omitted_by_default(self, tmp_path, artifact):
        embeddings, vocabulary = artifact
        path = tmp_path / "model.npz"
        save_deployable_model(path, embeddings, vocabulary)
        _, loaded_vocabulary, _ = load_deployable_model(path)
        assert loaded_vocabulary.counts() == {}
        # Without counts the opt-in fallback prior degrades to uniform.
        reloaded = load_recommender(path, with_fallback=True)
        assert np.allclose(
            reloaded.fallback_scores, reloaded.fallback_scores[0]
        )

    def test_counts_round_trip_when_opted_in(self, tmp_path, artifact):
        embeddings, vocabulary = artifact
        path = tmp_path / "model.npz"
        save_deployable_model(path, embeddings, vocabulary, include_counts=True)
        _, loaded_vocabulary, _ = load_deployable_model(path)
        for token in range(vocabulary.size):
            assert loaded_vocabulary.count(token) == vocabulary.count(token)

    def test_load_recommender_without_fallback_rejects_empty_queries(
        self, tmp_path, artifact
    ):
        from repro.exceptions import ConfigError

        embeddings, vocabulary = artifact
        path = tmp_path / "model.npz"
        save_deployable_model(path, embeddings, vocabulary)
        reloaded = load_recommender(path)
        assert reloaded.fallback_scores is None
        with pytest.raises(ConfigError):
            reloaded.score_all(["poi-that-does-not-exist"])

    def test_load_recommender_exclude_input(self, tmp_path, artifact):
        embeddings, vocabulary = artifact
        path = tmp_path / "model.npz"
        save_deployable_model(path, embeddings, vocabulary)
        reloaded = load_recommender(path, exclude_input=True)
        locations = [name for name, _ in reloaded.recommend(["cafe"], top_k=5)]
        assert "cafe" not in locations
        # The masked input scores -inf, so it can only ever rank dead last.
        full = reloaded.recommend(["cafe"], top_k=6)
        assert full[-1][0] == "cafe" and np.isneginf(full[-1][1])

    def test_non_string_location_ids_survive(self, tmp_path):
        rng = np.random.default_rng(1)
        embeddings = EmbeddingMatrix(rng.normal(size=(3, 4)))
        vocabulary = LocationVocabulary.from_sequences([[101, 202, 303]])
        path = tmp_path / "model.npz"
        save_deployable_model(path, embeddings, vocabulary)
        _, loaded_vocabulary, _ = load_deployable_model(path)
        assert loaded_vocabulary.size == 3
        assert 101 in loaded_vocabulary


class TestValidation:
    def test_size_mismatch_rejected(self, tmp_path, artifact):
        embeddings, _ = artifact
        small_vocabulary = LocationVocabulary.from_sequences([["a", "b"]])
        with pytest.raises(DataError):
            save_deployable_model(tmp_path / "m.npz", embeddings, small_vocabulary)

    def test_missing_file(self, tmp_path):
        with pytest.raises(DataError):
            load_deployable_model(tmp_path / "nope.npz")

    def test_malformed_file(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"this is not an npz archive")
        with pytest.raises(DataError):
            load_deployable_model(path)

    def test_wrong_keys(self, tmp_path):
        path = tmp_path / "wrong.npz"
        np.savez(path, something_else=np.zeros(3))
        with pytest.raises(DataError):
            load_deployable_model(path)
