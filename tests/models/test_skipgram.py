"""Tests for repro.models.skipgram, including a full gradient check."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigError
from repro.models.skipgram import BIAS, CONTEXT, EMBEDDING, SkipGramModel
from repro.nn.parameters import ParameterSet


@pytest.fixture()
def model() -> SkipGramModel:
    return SkipGramModel(num_locations=12, embedding_dim=5, num_negatives=3, rng=0)


def _random_batch(model, batch, rng):
    targets = rng.integers(0, model.num_locations, size=batch)
    contexts = rng.integers(0, model.num_locations, size=batch)
    negatives = rng.integers(0, model.num_locations, size=(batch, model.num_negatives))
    return targets, contexts, negatives


class TestConstruction:
    def test_parameter_shapes(self, model):
        assert model.params.shapes() == {
            EMBEDDING: (12, 5),
            CONTEXT: (12, 5),
            BIAS: (12,),
        }

    def test_context_and_bias_start_zero(self, model):
        assert not model.params[CONTEXT].any()
        assert not model.params[BIAS].any()

    def test_embedding_word2vec_range(self, model):
        assert np.abs(model.params[EMBEDDING]).max() <= 0.5 / 5

    def test_rejects_invalid(self):
        with pytest.raises(ConfigError):
            SkipGramModel(num_locations=1)
        with pytest.raises(ConfigError):
            SkipGramModel(num_locations=10, embedding_dim=0)
        with pytest.raises(ConfigError):
            SkipGramModel(num_locations=10, num_negatives=0)
        with pytest.raises(ConfigError):
            SkipGramModel(num_locations=10, loss="bogus")


class TestForward:
    def test_logits_shape(self, model):
        rng = np.random.default_rng(1)
        targets, contexts, negatives = _random_batch(model, 7, rng)
        candidates = np.concatenate([contexts[:, None], negatives], axis=1)
        logits = model.candidate_logits(model.params, targets, candidates)
        assert logits.shape == (7, 4)

    def test_logits_match_manual(self, model):
        params = model.params
        params[EMBEDDING][:] = np.random.default_rng(2).normal(size=(12, 5))
        params[CONTEXT][:] = np.random.default_rng(3).normal(size=(12, 5))
        params[BIAS][:] = np.arange(12.0)
        logits = model.candidate_logits(params, np.array([4]), np.array([[7, 2]]))
        expected_0 = params[CONTEXT][7] @ params[EMBEDDING][4] + params[BIAS][7]
        expected_1 = params[CONTEXT][2] @ params[EMBEDDING][4] + params[BIAS][2]
        assert logits[0, 0] == pytest.approx(expected_0)
        assert logits[0, 1] == pytest.approx(expected_1)


class TestGradients:
    def test_dense_gradient_matches_finite_differences(self, model):
        rng = np.random.default_rng(5)
        # Perturb parameters away from zero so gradients are non-trivial.
        model.params[CONTEXT][:] = rng.normal(scale=0.2, size=(12, 5))
        model.params[BIAS][:] = rng.normal(scale=0.2, size=12)
        targets, contexts, negatives = _random_batch(model, 4, rng)
        _, grads = model.dense_gradients(model.params, targets, contexts, negatives)

        step = 1e-6
        for name in (EMBEDDING, CONTEXT, BIAS):
            tensor = model.params[name]
            flat_indices = np.random.default_rng(6).choice(
                tensor.size, size=min(12, tensor.size), replace=False
            )
            for flat in flat_indices:
                index = np.unravel_index(flat, tensor.shape)
                original = tensor[index]
                tensor[index] = original + step
                up, _ = model.loss_and_sparse_grads(
                    model.params, targets, contexts, negatives
                )
                tensor[index] = original - step
                down, _ = model.loss_and_sparse_grads(
                    model.params, targets, contexts, negatives
                )
                tensor[index] = original
                numeric = (up - down) / (2 * step)
                assert grads[name][index] == pytest.approx(numeric, abs=1e-5)

    def test_sparsity_of_updates(self, model):
        # Only the target row of W and the candidate rows of Wc/b change.
        rng = np.random.default_rng(7)
        model.params[CONTEXT][:] = rng.normal(scale=0.2, size=(12, 5))
        targets = np.array([3])
        contexts = np.array([5])
        negatives = np.array([[8, 1, 5]])
        _, grads = model.dense_gradients(model.params, targets, contexts, negatives)
        touched_w = set(np.flatnonzero(np.abs(grads[EMBEDDING]).sum(axis=1)))
        touched_wc = set(np.flatnonzero(np.abs(grads[CONTEXT]).sum(axis=1)))
        assert touched_w <= {3}
        assert touched_wc <= {5, 8, 1}

    def test_negatives_shape_validated(self, model):
        with pytest.raises(ConfigError):
            model.loss_and_sparse_grads(
                model.params, np.array([1]), np.array([2]), np.array([[1, 2]])
            )


class TestSgdStep:
    def test_reduces_loss_on_repeated_batch(self, model):
        rng = np.random.default_rng(8)
        targets = np.array([1, 2, 3, 1] * 4)
        contexts = np.array([2, 3, 1, 3] * 4)
        negatives = model.sample_negatives(len(targets), rng)
        before, _ = model.loss_and_sparse_grads(
            model.params, targets, contexts, negatives
        )
        for _ in range(50):
            model.sgd_step(model.params, targets, contexts, 0.5, rng)
        after, _ = model.loss_and_sparse_grads(
            model.params, targets, contexts, negatives
        )
        assert after < before

    def test_sparse_update_matches_dense(self, model):
        rng = np.random.default_rng(9)
        model.params[CONTEXT][:] = rng.normal(scale=0.2, size=(12, 5))
        targets, contexts, negatives = _random_batch(model, 6, rng)
        dense_params = model.params.copy()
        _, grads = model.dense_gradients(dense_params, targets, contexts, negatives)
        for name, grad in grads.items():
            dense_params[name] -= 0.1 * grad

        sparse_params = model.params.copy()
        _, pieces = model.loss_and_sparse_grads(
            sparse_params, targets, contexts, negatives
        )
        model.apply_sparse_update(sparse_params, pieces, 0.1)
        assert sparse_params.allclose(dense_params)


class TestInference:
    def test_normalized_embeddings_unit_rows(self, model):
        rows = model.normalized_embeddings()
        assert np.allclose(np.linalg.norm(rows, axis=1), 1.0)

    def test_sample_negatives_range(self, model):
        negatives = model.sample_negatives(100, rng=0)
        assert negatives.shape == (100, 3)
        assert negatives.min() >= 0
        assert negatives.max() < 12

    def test_negatives_approximately_uniform(self):
        model = SkipGramModel(num_locations=10, embedding_dim=2, num_negatives=5, rng=0)
        negatives = model.sample_negatives(20_000, rng=1)
        counts = np.bincount(negatives.ravel(), minlength=10)
        assert counts.min() > 0.9 * counts.mean()

    def test_evaluate_loss_no_mutation(self, model):
        before = model.params.copy()
        pairs = np.array([[1, 2], [3, 4]])
        loss = model.evaluate_loss(pairs, rng=0)
        assert np.isfinite(loss)
        assert model.params.allclose(before)

    def test_evaluate_loss_empty(self, model):
        assert np.isnan(model.evaluate_loss(np.empty((0, 2), dtype=np.int64)))

    def test_clone_architecture(self, model):
        clone = model.clone_architecture(rng=1)
        assert clone.num_locations == model.num_locations
        assert clone.embedding_dim == model.embedding_dim
        assert not clone.params.allclose(model.params)  # fresh init
