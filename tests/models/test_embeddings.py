"""Tests for repro.models.embeddings."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigError
from repro.models.embeddings import EmbeddingMatrix, top_k_indices


@pytest.fixture()
def embeddings() -> EmbeddingMatrix:
    rng = np.random.default_rng(0)
    return EmbeddingMatrix(rng.normal(size=(10, 4)))


class TestEmbeddingMatrix:
    def test_rows_normalized(self, embeddings):
        assert np.allclose(np.linalg.norm(embeddings.matrix, axis=1), 1.0)

    def test_dimensions(self, embeddings):
        assert embeddings.num_locations == 10
        assert embeddings.dim == 4

    def test_vector_lookup(self, embeddings):
        assert np.array_equal(embeddings.vector(3), embeddings.matrix[3])

    def test_vector_out_of_range(self, embeddings):
        with pytest.raises(ConfigError):
            embeddings.vector(10)

    def test_rejects_non_2d(self):
        with pytest.raises(ConfigError):
            EmbeddingMatrix(np.zeros(5))

    def test_normalize_false_keeps_raw(self):
        raw = np.array([[3.0, 4.0]])
        matrix = EmbeddingMatrix(raw, normalize=False)
        assert np.array_equal(matrix.matrix, raw)


class TestProfile:
    def test_single_token_is_its_vector(self, embeddings):
        assert np.allclose(embeddings.profile(np.array([2])), embeddings.vector(2))

    def test_mean_of_stacked_vectors(self, embeddings):
        tokens = np.array([1, 4, 7])
        expected = embeddings.matrix[tokens].mean(axis=0)
        assert np.allclose(embeddings.profile(tokens), expected)

    def test_empty_rejected(self, embeddings):
        with pytest.raises(ConfigError):
            embeddings.profile(np.array([], dtype=np.int64))


class TestScores:
    def test_self_similarity_maximal(self, embeddings):
        scores = embeddings.scores(embeddings.vector(5))
        assert np.argmax(scores) == 5

    def test_shape_validated(self, embeddings):
        with pytest.raises(ConfigError):
            embeddings.scores(np.zeros(3))

    def test_most_similar_excludes_self(self, embeddings):
        results = embeddings.most_similar(2, top_k=3)
        assert len(results) == 3
        assert all(token != 2 for token, _ in results)
        scores = [score for _, score in results]
        assert scores == sorted(scores, reverse=True)


class TestTopKIndices:
    def test_order(self):
        scores = np.array([0.1, 0.9, 0.5, 0.7])
        assert top_k_indices(scores, 2).tolist() == [1, 3]

    def test_k_larger_than_array(self):
        scores = np.array([3.0, 1.0, 2.0])
        assert top_k_indices(scores, 10).tolist() == [0, 2, 1]

    def test_k_zero_rejected(self):
        with pytest.raises(ConfigError):
            top_k_indices(np.array([1.0]), 0)

    @given(
        values=st.lists(
            st.floats(-100, 100, allow_nan=False), min_size=1, max_size=30, unique=True
        ),
        k=st.integers(1, 10),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_argsort(self, values, k):
        scores = np.array(values)
        expected = np.argsort(-scores)[: min(k, len(values))]
        assert top_k_indices(scores, k).tolist() == expected.tolist()
