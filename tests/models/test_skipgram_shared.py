"""Tests for the shared-negative (TF sampled-softmax style) fast path."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigError
from repro.models.skipgram import BIAS, CONTEXT, EMBEDDING, SkipGramModel


@pytest.fixture()
def model() -> SkipGramModel:
    model = SkipGramModel(
        num_locations=15, embedding_dim=6, num_negatives=4,
        negative_sharing="batch", rng=0,
    )
    rng = np.random.default_rng(5)
    model.params[CONTEXT][:] = rng.normal(scale=0.2, size=(15, 6))
    model.params[BIAS][:] = rng.normal(scale=0.2, size=15)
    return model


def _dense_from_pieces(model, pieces):
    grads = {
        EMBEDDING: np.zeros_like(model.params[EMBEDDING]),
        CONTEXT: np.zeros_like(model.params[CONTEXT]),
        BIAS: np.zeros_like(model.params[BIAS]),
    }
    np.add.at(grads[EMBEDDING], pieces["targets"], pieces["grad_hidden"])
    np.add.at(grads[CONTEXT], pieces["contexts"], pieces["grad_context_pos"])
    np.add.at(grads[CONTEXT], pieces["negatives"], pieces["grad_context_neg"])
    np.add.at(grads[BIAS], pieces["contexts"], pieces["grad_bias_pos"])
    np.add.at(grads[BIAS], pieces["negatives"], pieces["grad_bias_neg"])
    return grads


class TestSharedGradients:
    def test_matches_finite_differences(self, model):
        rng = np.random.default_rng(1)
        targets = rng.integers(0, 15, size=5)
        contexts = rng.integers(0, 15, size=5)
        negatives = rng.integers(0, 15, size=4)
        _, pieces = model.loss_and_shared_grads(
            model.params, targets, contexts, negatives
        )
        grads = _dense_from_pieces(model, pieces)

        step = 1e-6
        for name in (EMBEDDING, CONTEXT, BIAS):
            tensor = model.params[name]
            for flat in np.random.default_rng(2).choice(
                tensor.size, size=10, replace=False
            ):
                index = np.unravel_index(flat, tensor.shape)
                original = tensor[index]
                tensor[index] = original + step
                up, _ = model.loss_and_shared_grads(
                    model.params, targets, contexts, negatives
                )
                tensor[index] = original - step
                down, _ = model.loss_and_shared_grads(
                    model.params, targets, contexts, negatives
                )
                tensor[index] = original
                assert grads[name][index] == pytest.approx(
                    (up - down) / (2 * step), abs=1e-5
                )

    def test_loss_matches_per_pair_with_same_candidates(self, model):
        # When the shared negatives are replicated per pair, the two paths
        # compute the same logits and therefore the same loss.
        targets = np.array([1, 2, 3])
        contexts = np.array([4, 5, 6])
        negatives = np.array([7, 8, 9, 10])
        shared_loss, _ = model.loss_and_shared_grads(
            model.params, targets, contexts, negatives
        )
        replicated = np.tile(negatives, (3, 1))
        per_pair_loss, _ = model.loss_and_sparse_grads(
            model.params, targets, contexts, replicated
        )
        assert shared_loss == pytest.approx(per_pair_loss)

    def test_update_matches_per_pair_with_same_candidates(self, model):
        targets = np.array([1, 2, 3])
        contexts = np.array([4, 5, 6])
        negatives = np.array([7, 8, 9, 10])

        shared_params = model.params.copy()
        _, shared_pieces = model.loss_and_shared_grads(
            shared_params, targets, contexts, negatives
        )
        model.apply_sparse_update(shared_params, shared_pieces, 0.1)

        per_pair_params = model.params.copy()
        _, per_pair_pieces = model.loss_and_sparse_grads(
            per_pair_params, targets, contexts, np.tile(negatives, (3, 1))
        )
        model.apply_sparse_update(per_pair_params, per_pair_pieces, 0.1)

        assert shared_params.allclose(per_pair_params)

    def test_shape_validation(self, model):
        with pytest.raises(ConfigError):
            model.loss_and_shared_grads(
                model.params, np.array([1]), np.array([2]), np.array([1, 2])
            )

    def test_sgd_step_uses_shared_path(self, model):
        # A model in "batch" mode must produce a valid step and reduce the
        # loss on repeated identical batches.
        rng = np.random.default_rng(3)
        targets = np.array([1, 2, 3, 1])
        contexts = np.array([2, 3, 1, 3])
        first = model.sgd_step(model.params, targets, contexts, 0.5, rng)
        for _ in range(60):
            last = model.sgd_step(model.params, targets, contexts, 0.5, rng)
        assert last < first

    def test_invalid_sharing_mode_rejected(self):
        with pytest.raises(ConfigError):
            SkipGramModel(num_locations=10, negative_sharing="everything")
