"""Tests for repro.models.windowing."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigError
from repro.models.windowing import (
    BatchIterator,
    pairs_from_sequence,
    pairs_from_sequences,
)


class TestPairsFromSequence:
    def test_window_one(self):
        pairs = pairs_from_sequence([1, 2, 3], window=1)
        assert pairs == [(1, 2), (2, 1), (2, 3), (3, 2)]

    def test_window_covers_both_sides(self):
        pairs = pairs_from_sequence([5, 6, 7], window=2)
        assert (5, 7) in pairs
        assert (7, 5) in pairs

    def test_single_element_no_pairs(self):
        assert pairs_from_sequence([4], window=2) == []

    def test_no_self_pairs_from_position(self):
        # A position never pairs with itself (repeated values may pair).
        pairs = pairs_from_sequence([1, 2, 3, 4], window=3)
        for target, context in pairs:
            assert (target, context) != (target, target) or target != context

    def test_rejects_window_zero(self):
        with pytest.raises(ConfigError):
            pairs_from_sequence([1, 2], window=0)

    @given(
        sequence=st.lists(st.integers(0, 9), min_size=2, max_size=20),
        window=st.integers(1, 4),
    )
    @settings(max_examples=60, deadline=None)
    def test_pair_count_formula(self, sequence, window):
        # Each position i contributes min(i, w) + min(n-1-i, w) pairs.
        n = len(sequence)
        expected = sum(min(i, window) + min(n - 1 - i, window) for i in range(n))
        assert len(pairs_from_sequence(sequence, window)) == expected

    @given(
        sequence=st.lists(st.integers(0, 9), min_size=2, max_size=20),
        window=st.integers(1, 4),
    )
    @settings(max_examples=60, deadline=None)
    def test_symmetry(self, sequence, window):
        # Window pairs come in symmetric (a, b) / (b, a) position pairs.
        from collections import Counter

        counts = Counter(pairs_from_sequence(sequence, window))
        flipped = Counter((b, a) for a, b in counts.elements())
        assert counts == flipped


class TestPairsFromSequences:
    def test_stacks(self):
        pairs = pairs_from_sequences([[1, 2], [3, 4]], window=1)
        assert pairs.shape == (4, 2)

    def test_empty_input(self):
        pairs = pairs_from_sequences([[1]], window=2)
        assert pairs.shape == (0, 2)
        assert pairs.dtype == np.int64


class TestBatchIterator:
    def _pairs(self, n: int) -> np.ndarray:
        return np.column_stack([np.arange(n), np.arange(n) + 100])

    def test_batch_sizes(self):
        iterator = BatchIterator(self._pairs(10), batch_size=4, rng=0)
        sizes = [len(targets) for targets, _ in iterator]
        assert sizes == [4, 4, 2]

    def test_len(self):
        assert len(BatchIterator(self._pairs(10), batch_size=4)) == 3
        assert len(BatchIterator(self._pairs(8), batch_size=4)) == 2

    def test_covers_all_pairs(self):
        iterator = BatchIterator(self._pairs(13), batch_size=5, rng=1)
        seen = sorted(
            target for targets, _ in iterator for target in targets.tolist()
        )
        assert seen == list(range(13))

    def test_pairs_stay_aligned(self):
        iterator = BatchIterator(self._pairs(20), batch_size=6, rng=2)
        for targets, contexts in iterator:
            assert np.array_equal(contexts, targets + 100)

    def test_shuffle_changes_order(self):
        pairs = self._pairs(50)
        ordered = BatchIterator(pairs, batch_size=50, shuffle=False)
        shuffled = BatchIterator(pairs, batch_size=50, rng=3)
        (ordered_targets, _), = list(ordered)
        (shuffled_targets, _), = list(shuffled)
        assert not np.array_equal(ordered_targets, shuffled_targets)

    def test_empty_pairs(self):
        iterator = BatchIterator(np.empty((0, 2), dtype=np.int64), batch_size=4)
        assert list(iterator) == []

    def test_rejects_bad_shape(self):
        with pytest.raises(ConfigError):
            BatchIterator(np.zeros((3, 3)), batch_size=2)

    def test_rejects_bad_batch_size(self):
        with pytest.raises(ConfigError):
            BatchIterator(self._pairs(4), batch_size=0)
