"""Batched scoring: equivalence with the single-query path and degradation.

The contract under test is the one the evaluator and the serving layer
rely on: in ``"exact"`` mode, ``score_batch``/``recommend_batch`` rows are
bit-for-bit what the per-query calls return, regardless of batch
composition; queries with nothing known to the model hit the fallback
prior (or a typed error), never NaN.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigError
from repro.models.embeddings import EmbeddingMatrix, top_k_indices
from repro.models.recommender import NextLocationRecommender, batched_top_k_indices
from repro.models.vocabulary import LocationVocabulary

L, DIM = 80, 12


@pytest.fixture(scope="module")
def embeddings() -> EmbeddingMatrix:
    rng = np.random.default_rng(11)
    return EmbeddingMatrix(rng.normal(size=(L, DIM)))


@pytest.fixture(scope="module")
def vocabulary() -> LocationVocabulary:
    return LocationVocabulary.from_locations(
        [f"poi-{i}" for i in range(L)], counts=list(range(1, L + 1))
    )


def _random_queries(rng, n, vocabulary=None):
    queries = []
    for _ in range(n):
        tokens = rng.integers(0, L, size=int(rng.integers(1, 15)))
        if vocabulary is None:
            queries.append(tokens.tolist())
        else:
            queries.append([f"poi-{t}" for t in tokens])
    return queries


@pytest.mark.parametrize("use_vocab", [False, True])
def test_score_batch_rows_bitwise_equal_score_all(embeddings, vocabulary, use_vocab):
    rng = np.random.default_rng(5)
    recommender = NextLocationRecommender(
        embeddings, vocabulary=vocabulary if use_vocab else None
    )
    queries = _random_queries(rng, 100, vocabulary if use_vocab else None)
    batch = recommender.score_batch(queries, mode="exact")
    assert batch.shape == (100, L)
    for i, query in enumerate(queries):
        assert np.array_equal(batch[i], recommender.score_all(query))


@pytest.mark.parametrize("use_vocab", [False, True])
def test_recommend_batch_equals_per_query_recommend(embeddings, vocabulary, use_vocab):
    rng = np.random.default_rng(6)
    recommender = NextLocationRecommender(
        embeddings, vocabulary=vocabulary if use_vocab else None
    )
    queries = _random_queries(rng, 100, vocabulary if use_vocab else None)
    batch = recommender.recommend_batch(queries, top_k=10, mode="exact")
    per_query = [recommender.recommend(query, top_k=10) for query in queries]
    assert batch == per_query  # bit-for-bit: same locations, same floats


def test_batch_rows_independent_of_batch_composition(embeddings):
    recommender = NextLocationRecommender(embeddings)
    rng = np.random.default_rng(8)
    queries = _random_queries(rng, 32, None)
    whole = recommender.score_batch(queries, mode="exact")
    # The same query scored in a different batch (or alone) is identical.
    shuffled = list(reversed(queries))
    reversed_batch = recommender.score_batch(shuffled, mode="exact")
    assert np.array_equal(whole, reversed_batch[::-1])
    alone = recommender.score_batch(queries[:1], mode="exact")
    assert np.array_equal(whole[0], alone[0])


def test_fast_mode_matches_exact_ranking_closely(embeddings):
    recommender = NextLocationRecommender(embeddings)
    rng = np.random.default_rng(9)
    queries = _random_queries(rng, 50, None)
    exact = recommender.score_batch(queries, mode="exact")
    fast = recommender.score_batch(queries, mode="fast")
    assert fast.dtype == np.float32
    np.testing.assert_allclose(fast, exact, atol=1e-5)
    # Top-1 agreement: float32 rounding must not change the best candidate
    # on this well-separated synthetic geometry.
    assert np.array_equal(np.argmax(exact, axis=1), np.argmax(fast, axis=1))


def test_exclude_input_masks_every_query_token(embeddings):
    recommender = NextLocationRecommender(embeddings, exclude_input=True)
    queries = [[0, 1, 2], [5], [7, 7, 9]]
    scores = recommender.score_batch(queries, mode="exact")
    for i, query in enumerate(queries):
        assert np.all(np.isneginf(scores[i, query]))
        others = np.setdiff1d(np.arange(L), query)
        assert np.all(np.isfinite(scores[i, others]))
    per_query = [recommender.recommend(q, top_k=5) for q in queries]
    assert recommender.recommend_batch(queries, top_k=5, mode="exact") == per_query


def test_empty_query_uses_fallback_prior(embeddings, vocabulary):
    prior = np.linspace(1.0, 2.0, L)
    recommender = NextLocationRecommender(
        embeddings, vocabulary=vocabulary, fallback_scores=prior
    )
    scores = recommender.score_batch(
        [["poi-3"], ["unknown-a", "unknown-b"], []], mode="exact"
    )
    assert np.array_equal(scores[1], prior)
    assert np.array_equal(scores[2], prior)
    assert not np.array_equal(scores[0], prior)
    assert not np.isnan(scores).any()
    # The single-query path agrees.
    assert np.array_equal(recommender.score_all(["unknown-a"]), prior)


def test_empty_query_without_fallback_raises_config_error(embeddings, vocabulary):
    recommender = NextLocationRecommender(embeddings, vocabulary=vocabulary)
    with pytest.raises(ConfigError):
        recommender.score_batch([["poi-1"], ["unknown"]], mode="exact")
    with pytest.raises(ConfigError):
        recommender.score_all([])


def test_fallback_shape_is_validated(embeddings):
    with pytest.raises(ConfigError):
        NextLocationRecommender(embeddings, fallback_scores=np.ones(L + 1))


def test_invalid_mode_and_tokens_raise(embeddings):
    recommender = NextLocationRecommender(embeddings)
    with pytest.raises(ConfigError):
        recommender.score_batch([[0]], mode="turbo")
    with pytest.raises(ConfigError):
        recommender.score_batch([[0], [L + 5]])
    with pytest.raises(ConfigError):
        recommender.score_all([-1])


def test_score_batch_empty_input(embeddings):
    recommender = NextLocationRecommender(embeddings)
    assert recommender.score_batch([]).shape == (0, L)
    assert recommender.recommend_batch([]) == []


def test_batched_top_k_matches_single_row_top_k():
    rng = np.random.default_rng(12)
    scores = rng.normal(size=(40, 33))
    # Inject ties to exercise the stable ordering.
    scores[:, 5] = scores[:, 17]
    top = batched_top_k_indices(scores, 7)
    for i in range(scores.shape[0]):
        assert np.array_equal(top[i], top_k_indices(scores[i], 7))
    # k larger than the row width clamps, like the 1-D helper.
    wide = batched_top_k_indices(scores, 100)
    assert wide.shape == (40, 33)
    with pytest.raises(ConfigError):
        batched_top_k_indices(scores, 0)
