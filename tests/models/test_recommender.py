"""Tests for repro.models.recommender."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigError, NotFittedError
from repro.models.embeddings import EmbeddingMatrix
from repro.models.recommender import NextLocationRecommender
from repro.models.vocabulary import LocationVocabulary


@pytest.fixture()
def clustered_embeddings() -> EmbeddingMatrix:
    """Six locations in two tight clusters: {0,1,2} and {3,4,5}."""
    rng = np.random.default_rng(0)
    base_a = np.array([1.0, 0.0, 0.0, 0.0])
    base_b = np.array([0.0, 1.0, 0.0, 0.0])
    rows = [base_a + rng.normal(scale=0.05, size=4) for _ in range(3)]
    rows += [base_b + rng.normal(scale=0.05, size=4) for _ in range(3)]
    return EmbeddingMatrix(np.stack(rows))


class TestTokenMode:
    def test_recommends_same_cluster(self, clustered_embeddings):
        recommender = NextLocationRecommender(clustered_embeddings)
        top = [token for token, _ in recommender.recommend([0, 1], top_k=3)]
        assert set(top) == {0, 1, 2}

    def test_exclude_input(self, clustered_embeddings):
        recommender = NextLocationRecommender(
            clustered_embeddings, exclude_input=True
        )
        top = [token for token, _ in recommender.recommend([0, 1], top_k=2)]
        assert 0 not in top
        assert 1 not in top
        assert 2 in top

    def test_scores_descending(self, clustered_embeddings):
        recommender = NextLocationRecommender(clustered_embeddings)
        results = recommender.recommend([3], top_k=6)
        scores = [score for _, score in results]
        assert scores == sorted(scores, reverse=True)

    def test_out_of_range_token_rejected(self, clustered_embeddings):
        recommender = NextLocationRecommender(clustered_embeddings)
        with pytest.raises(ConfigError):
            recommender.score_all([99])

    def test_hit(self, clustered_embeddings):
        recommender = NextLocationRecommender(clustered_embeddings)
        assert recommender.hit([0, 1], actual_next=2, top_k=3)
        assert not recommender.hit([0, 1], actual_next=4, top_k=2)


class TestVocabularyMode:
    @pytest.fixture()
    def recommender(self, clustered_embeddings):
        vocabulary = LocationVocabulary.from_sequences(
            [["cafe", "bar", "club", "gym", "pool", "spa"]]
        )
        return NextLocationRecommender(clustered_embeddings, vocabulary=vocabulary)

    def test_raw_ids_in_and_out(self, recommender):
        results = recommender.recommend(["cafe", "bar"], top_k=3)
        names = [name for name, _ in results]
        assert set(names) == {"cafe", "bar", "club"}

    def test_unknown_inputs_dropped(self, recommender):
        scores_clean = recommender.score_all(["cafe"])
        scores_noisy = recommender.score_all(["cafe", "atlantis"])
        assert np.allclose(scores_clean, scores_noisy)

    def test_all_unknown_rejected(self, recommender):
        with pytest.raises(ConfigError):
            recommender.score_all(["atlantis", "elDorado"])


class TestConstruction:
    def test_requires_embeddings(self):
        with pytest.raises(NotFittedError):
            NextLocationRecommender(None)  # type: ignore[arg-type]
