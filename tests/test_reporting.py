"""Tests for text reporting helpers."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigError
from repro.reporting import ascii_chart, format_table, sparkline


class TestSparkline:
    def test_length_matches_input(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_monotone_series_monotone_blocks(self):
        line = sparkline([1, 2, 3, 4, 5])
        assert list(line) == sorted(line)

    def test_constant_series(self):
        line = sparkline([3.0, 3.0, 3.0])
        assert len(set(line)) == 1

    def test_nan_renders_blank(self):
        line = sparkline([1.0, float("nan"), 2.0])
        assert line[1] == " "

    def test_all_nan(self):
        assert sparkline([float("nan")] * 3) == "   "


class TestAsciiChart:
    def test_height_rows(self):
        chart = ascii_chart([1, 5, 3, 4], height=6)
        assert len(chart.splitlines()) == 6

    def test_label_header(self):
        chart = ascii_chart([1, 2], height=4, label="loss")
        lines = chart.splitlines()
        assert lines[0].startswith("loss")
        assert len(lines) == 5

    def test_peak_column_tallest(self):
        chart = ascii_chart([0, 10, 0], height=5)
        top_row = chart.splitlines()[0]
        assert top_row[1] == "█"
        assert top_row[0] == " "

    def test_downsampling(self):
        chart = ascii_chart(list(range(100)), height=4, width=10)
        assert all(len(line) == 10 for line in chart.splitlines())

    def test_invalid_inputs(self):
        with pytest.raises(ConfigError):
            ascii_chart([1, 2], height=1)
        with pytest.raises(ConfigError):
            ascii_chart([float("nan")])


class TestFormatTable:
    def test_alignment_and_floats(self):
        text = format_table(["name", "x"], [["a", 0.123456], ["bb", 2]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "0.1235" in text

    def test_title(self):
        text = format_table(["a"], [], title="Results")
        assert text.splitlines()[0] == "Results"

    def test_empty_headers_rejected(self):
        with pytest.raises(ConfigError):
            format_table([], [])
