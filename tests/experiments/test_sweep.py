"""The fleet-scale sweep orchestrator (`repro.experiments.sweep`).

Covers the declarative spec (parsing, validation, subsets,
content-addressed identity), expansion, the resumable work queue
(serial and process-pool), mid-sweep kill + resume bit-identity
(fault-injected worker death and the deterministic ``halt_after``
kill), failed-run handling, aggregation schema, and the
``repro_sweep_*`` metrics.
"""

from __future__ import annotations

import json

import pytest

from repro.exceptions import ConfigError
from repro.experiments import (
    GridSpec,
    WorkloadSpec,
    expand_spec,
    figure_spec,
    figure_specs,
    run_sweep,
    validate_aggregate,
)
from repro.experiments import sweep as sweep_module
from repro.experiments.runner import RunOutcome
from repro.observability import with_observability

SPEC_PAYLOAD = {
    "name": "unit",
    "axes": {"epsilon": [1.0, 5.0], "grouping_factor": [1, 4]},
    "base": {
        "embedding_dim": 6,
        "num_negatives": 3,
        "sampling_probability": 0.25,
        "noise_multiplier": 2.0,
        "max_steps": 1,
    },
    "methods": ["plp"],
    "seeds": 2,
    "seed": 7,
    "workload": {
        "synthetic": {
            "num_users": 50,
            "num_locations": 30,
            "num_clusters": 4,
            "mean_checkins_per_user": 15.0,
        },
        "holdout_users": 8,
    },
    "subsets": {"quick": {"axes": {"epsilon": [1.0]}, "seeds": 1}},
}


@pytest.fixture(scope="module")
def spec() -> GridSpec:
    return GridSpec.from_dict(SPEC_PAYLOAD)


@pytest.fixture(scope="module")
def serial_sweep(spec, tmp_path_factory):
    """One uninterrupted serial sweep; the bit-identity reference."""
    out = tmp_path_factory.mktemp("sweep") / "serial"
    report = run_sweep(spec, out, workers=1)
    return report, out


class TestSpecParsing:
    def test_round_trip(self, spec):
        assert GridSpec.from_dict(spec.as_dict()).as_dict() == spec.as_dict()

    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigError, match="unknown sweep spec keys"):
            GridSpec.from_dict({**SPEC_PAYLOAD, "tubro": True})

    def test_unknown_workload_keys_rejected(self):
        payload = json.loads(json.dumps(SPEC_PAYLOAD))
        payload["workload"]["surprise"] = 1
        with pytest.raises(ConfigError, match="unknown workload keys"):
            GridSpec.from_dict(payload)

    def test_empty_axes_rejected(self):
        with pytest.raises(ConfigError, match="axes"):
            GridSpec.from_dict({**SPEC_PAYLOAD, "axes": {}})

    def test_unknown_axis_field_rejected(self):
        with pytest.raises(ConfigError, match="warp_drive"):
            GridSpec.from_dict({**SPEC_PAYLOAD, "axes": {"warp_drive": [1]}})

    def test_duplicate_axis_values_rejected(self):
        with pytest.raises(ConfigError, match="duplicate values"):
            GridSpec.from_dict({**SPEC_PAYLOAD, "axes": {"epsilon": [1.0, 1.0]}})

    def test_bad_method_rejected(self):
        with pytest.raises(ConfigError, match="method"):
            GridSpec.from_dict({**SPEC_PAYLOAD, "methods": ["magic"]})

    def test_unknown_base_field_rejected(self):
        with pytest.raises(ConfigError, match="base fields"):
            GridSpec.from_dict({**SPEC_PAYLOAD, "base": {"warp_drive": 9}})

    def test_workload_data_and_synthetic_exclusive(self):
        with pytest.raises(ConfigError, match="not both"):
            WorkloadSpec(data="corpus.csv", synthetic={"num_users": 10})

    def test_from_file(self, spec, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(SPEC_PAYLOAD))
        assert GridSpec.from_file(path).spec_hash() == spec.spec_hash()

    def test_from_file_bad_json(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text("{nope")
        with pytest.raises(ConfigError, match="not valid JSON"):
            GridSpec.from_file(path)

    def test_spec_hash_changes_with_content(self, spec):
        other = GridSpec.from_dict({**SPEC_PAYLOAD, "seeds": 3})
        assert other.spec_hash() != spec.spec_hash()


class TestSubsets:
    def test_subset_restricts_axes_and_seeds(self, spec):
        quick = spec.subset("quick")
        assert quick.name == "unit:quick"
        assert len(expand_spec(quick)) == 2  # 1 epsilon x 2 lambda x 1 seed
        assert quick.seeds == 1

    def test_subset_runs_keep_parent_identity(self, spec):
        parent_ids = {run.run_id for run in expand_spec(spec)}
        subset_ids = {run.run_id for run in expand_spec(spec.subset("quick"))}
        assert subset_ids < parent_ids

    def test_unknown_subset_rejected(self, spec):
        with pytest.raises(ConfigError, match="unknown subset"):
            spec.subset("nope")

    def test_subset_value_outside_parent_rejected(self):
        payload = json.loads(json.dumps(SPEC_PAYLOAD))
        payload["subsets"] = {"bad": {"axes": {"epsilon": [99.0]}}}
        with pytest.raises(ConfigError, match="not in the parent"):
            GridSpec.from_dict(payload).subset("bad")


class TestExpansion:
    def test_counts_and_order(self, spec):
        runs = expand_spec(spec)
        assert len(runs) == 8  # 2 x 2 grid x 1 method x 2 seeds
        assert [run.index for run in runs] == list(range(8))
        # First axis is slowest-varying.
        assert [run.overrides["epsilon"] for run in runs] == [1.0] * 4 + [5.0] * 4

    def test_run_ids_unique_and_stable(self, spec):
        first = [run.run_id for run in expand_spec(spec)]
        second = [run.run_id for run in expand_spec(spec)]
        assert first == second
        assert len(set(first)) == len(first)

    def test_identity_is_position_independent(self, spec):
        reordered = GridSpec.from_dict({
            **SPEC_PAYLOAD,
            "axes": {"grouping_factor": [4, 1], "epsilon": [5.0, 1.0]},
        })
        assert reordered.spec_hash() != spec.spec_hash()
        assert {run.run_id for run in expand_spec(reordered)} == {
            run.run_id for run in expand_spec(spec)
        }

    def test_invalid_grid_point_fails_fast(self):
        bad = GridSpec.from_dict({**SPEC_PAYLOAD, "axes": {"epsilon": [1.0, -1.0]}})
        with pytest.raises(ConfigError, match="epsilon"):
            expand_spec(bad)


class TestSerialSweep:
    def test_accounting(self, serial_sweep):
        report, _ = serial_sweep
        assert report.total == 8
        assert report.executed == 8
        assert report.skipped == 0
        assert report.failed == 0
        assert not report.halted

    def test_outputs_on_disk(self, serial_sweep, spec):
        report, out = serial_sweep
        manifest = json.loads((out / "sweep.json").read_text())
        assert manifest["spec_hash"] == spec.spec_hash()
        assert len(manifest["runs"]) == 8
        assert len(list((out / "runs").glob("*.json"))) == 8
        aggregate = json.loads((out / "aggregate.json").read_text())
        validate_aggregate(aggregate)
        assert aggregate["counts"] == {"total": 8, "ok": 8, "failed": 0}
        for axis in ("epsilon", "grouping_factor"):
            csv_text = (out / "figures" / f"{axis}.csv").read_text()
            assert csv_text.count("\n") == 9  # header + 8 rows

    def test_table_matches_manifest_order(self, serial_sweep):
        report, out = serial_sweep
        aggregate = json.loads((out / "aggregate.json").read_text())
        assert report.table is not None
        assert len(report.table.outcomes) == 8
        for entry, outcome in zip(aggregate["runs"], report.table.outcomes):
            assert entry["hit_rate"] == {
                str(k): v for k, v in outcome.hit_rate.items()
            }

    def test_resume_skips_everything(self, serial_sweep, spec):
        _, out = serial_sweep
        resumed = run_sweep(spec, out, workers=1, resume=True)
        assert resumed.executed == 0
        assert resumed.skipped == 8
        assert resumed.aggregate_path is not None

    def test_rerun_without_resume_rejected(self, serial_sweep, spec):
        _, out = serial_sweep
        with pytest.raises(ConfigError, match="resume"):
            run_sweep(spec, out, workers=1)

    def test_different_spec_in_same_dir_rejected(self, serial_sweep):
        _, out = serial_sweep
        other = GridSpec.from_dict({**SPEC_PAYLOAD, "seeds": 1})
        with pytest.raises(ConfigError, match="different sweep"):
            run_sweep(other, out, workers=1, resume=True)

    def test_corrupt_outcome_file_is_rerun(self, serial_sweep, spec, tmp_path):
        _, reference = serial_sweep
        out = tmp_path / "corrupt"
        run_sweep(spec, out, workers=1)
        victim = sorted((out / "runs").glob("*.json"))[0]
        victim.write_text("{not json")
        resumed = run_sweep(spec, out, workers=1, resume=True)
        assert resumed.executed == 1
        assert resumed.skipped == 7
        assert (out / "aggregate.json").read_bytes() == (
            reference / "aggregate.json"
        ).read_bytes()


class TestParallelSweep:
    def test_parallel_bit_identical_to_serial(self, serial_sweep, spec, tmp_path):
        _, reference = serial_sweep
        out = tmp_path / "par"
        report = run_sweep(spec, out, workers=2)
        assert report.executed == 8
        assert (out / "aggregate.json").read_bytes() == (
            reference / "aggregate.json"
        ).read_bytes()

    def test_worker_kill_then_resume_bit_identical(
        self, serial_sweep, spec, tmp_path
    ):
        """A worker dies mid-sweep; the pool rebuild + manifest-driven
        resume must converge on the uninterrupted aggregate bit for bit."""
        _, reference = serial_sweep
        out = tmp_path / "fault"
        marker = tmp_path / "fault-marker"
        marker.write_text("die")
        report = run_sweep(spec, out, workers=2, fault_marker=str(marker))
        assert report.pool_rebuilds >= 1
        assert not marker.exists()  # claimed by the dying worker
        assert report.total == 8
        assert not report.halted
        assert (out / "aggregate.json").read_bytes() == (
            reference / "aggregate.json"
        ).read_bytes()
        # The resume path over the post-crash state is also a no-op.
        resumed = run_sweep(spec, out, workers=2, resume=True)
        assert resumed.executed == 0
        assert resumed.skipped == 8

    def test_halt_and_resume_accounting(self, serial_sweep, spec, tmp_path):
        _, reference = serial_sweep
        out = tmp_path / "halt"
        halted = run_sweep(spec, out, workers=1, halt_after=3)
        assert halted.halted
        assert halted.executed == 3
        assert halted.aggregate_path is None
        resumed = run_sweep(spec, out, workers=1, resume=True)
        assert not resumed.halted
        assert resumed.skipped == 3
        assert resumed.executed == 5
        assert resumed.skipped + resumed.executed == resumed.total
        assert (out / "aggregate.json").read_bytes() == (
            reference / "aggregate.json"
        ).read_bytes()


class TestFailedRuns:
    def test_failed_run_recorded_not_fatal(self, spec, tmp_path, monkeypatch):
        real_run_one = sweep_module.ExperimentRunner.run_one

        def flaky(self, overrides=None, method="plp", seed_offset=0, rng=None):
            outcome = real_run_one(
                self, overrides=overrides, method=method,
                seed_offset=seed_offset, rng=rng,
            )
            if overrides and overrides.get("grouping_factor") == 4:
                return RunOutcome(
                    parameters=dict(overrides), method=method, hit_rate={},
                    steps=0, epsilon_spent=0.0,
                    train_seconds=outcome.train_seconds,
                    error="Traceback: induced failure",
                )
            return outcome

        monkeypatch.setattr(sweep_module.ExperimentRunner, "run_one", flaky)
        report = run_sweep(spec, tmp_path / "failing", workers=1)
        assert report.failed == 4
        assert report.executed == 8
        aggregate = json.loads((tmp_path / "failing/aggregate.json").read_text())
        validate_aggregate(aggregate)
        assert aggregate["counts"] == {"total": 8, "ok": 4, "failed": 4}
        failed_rows = [run for run in aggregate["runs"] if run["error"]]
        assert len(failed_rows) == 4
        assert all("induced failure" in run["error"] for run in failed_rows)
        assert report.table is not None
        assert report.table.best().parameters["grouping_factor"] == 1


class TestObservability:
    def test_metrics_and_spans(self, spec, tmp_path):
        obs = with_observability()
        run_sweep(spec, tmp_path / "obs", workers=1, observability=obs)
        rendered = obs.metrics.render_prometheus()
        assert "repro_sweep_runs_total 8" in rendered
        assert "repro_sweep_executed_total 8" in rendered
        assert "repro_sweep_skipped_total 0" in rendered
        names = [span.name for span in obs.tracer.finished_spans]
        assert names.count("sweep.run") == 8
        assert "sweep" in names


class TestInvalidLaunch:
    def test_bad_workers(self, spec, tmp_path):
        with pytest.raises(ConfigError, match="workers"):
            run_sweep(spec, tmp_path / "x", workers=0)

    def test_bad_halt_after(self, spec, tmp_path):
        with pytest.raises(ConfigError, match="halt_after"):
            run_sweep(spec, tmp_path / "x", halt_after=0)


class TestValidateAggregate:
    @pytest.fixture()
    def aggregate(self, serial_sweep):
        _, out = serial_sweep
        return json.loads((out / "aggregate.json").read_text())

    def test_accepts_real_aggregate(self, aggregate):
        validate_aggregate(aggregate)

    def test_rejects_count_mismatch(self, aggregate):
        broken = json.loads(json.dumps(aggregate))
        broken["counts"]["ok"] = 99
        with pytest.raises(ConfigError, match="counts.ok"):
            validate_aggregate(broken)

    def test_rejects_wall_clock_leakage(self, aggregate):
        broken = json.loads(json.dumps(aggregate))
        broken["runs"][0]["train_seconds"] = 1.0
        with pytest.raises(ConfigError, match="wall-clock"):
            validate_aggregate(broken)

    def test_rejects_out_of_order_runs(self, aggregate):
        broken = json.loads(json.dumps(aggregate))
        broken["runs"].reverse()
        with pytest.raises(ConfigError, match="out of order"):
            validate_aggregate(broken)


class TestFigures:
    def test_every_paper_figure_has_a_spec(self):
        specs = figure_specs("smoke")
        assert len(specs) == 6
        for grid in specs:
            assert len(grid.axes) == 1
            assert grid.name.endswith("-smoke")
            expand_spec(grid)  # must be a valid, expandable grid

    def test_swept_field_not_pinned_by_base(self):
        grid = figure_spec("fig13_negatives", "smoke")
        assert "num_negatives" not in grid.base

    def test_unknown_figure_rejected(self):
        with pytest.raises(ConfigError, match="unknown figure"):
            figure_spec("fig99_flux", "smoke")

    def test_unknown_scale_rejected(self):
        with pytest.raises(ConfigError, match="scale"):
            figure_spec("fig7_epsilon", "galactic")
