"""Tests for the experiment-sweep framework."""

from __future__ import annotations

import pytest

from repro.core.config import PLPConfig
from repro.exceptions import ConfigError
from repro.experiments import ExperimentRunner, ResultTable, RunOutcome, SweepSpec


@pytest.fixture()
def runner(split_dataset) -> ExperimentRunner:
    train, holdout = split_dataset
    base = PLPConfig(
        embedding_dim=8,
        num_negatives=4,
        sampling_probability=0.2,
        noise_multiplier=2.0,
        epsilon=50.0,
        max_steps=4,
    )
    return ExperimentRunner(train, holdout, base_config=base, seed=5)


class TestSweepSpec:
    def test_defaults_label_to_field(self):
        spec = SweepSpec(field="grouping_factor", values=(1, 2))
        assert spec.label == "grouping_factor"

    def test_rejects_unknown_field(self):
        with pytest.raises(ConfigError):
            SweepSpec(field="warp_drive", values=(1,))

    def test_rejects_empty_values(self):
        with pytest.raises(ConfigError):
            SweepSpec(field="grouping_factor", values=())


class TestRunOne:
    def test_returns_outcome(self, runner):
        outcome = runner.run_one({"grouping_factor": 2})
        assert outcome.method == "plp"
        assert outcome.steps == 4
        assert 0.0 <= outcome.hr(10) <= 1.0
        assert outcome.parameters == {"grouping_factor": 2}

    def test_dpsgd_method(self, runner):
        outcome = runner.run_one(method="dpsgd")
        assert outcome.method == "dpsgd"

    def test_unknown_method_rejected(self, runner):
        with pytest.raises(ConfigError):
            runner.run_one(method="magic")

    def test_deterministic_per_offset(self, runner):
        a = runner.run_one({"grouping_factor": 2}, seed_offset=1)
        b = runner.run_one({"grouping_factor": 2}, seed_offset=1)
        assert a.hr(10) == b.hr(10)


class TestSweep:
    def test_covers_all_values_and_methods(self, runner):
        spec = SweepSpec(field="grouping_factor", values=(1, 3))
        table = runner.sweep(spec, methods=("plp", "dpsgd"))
        assert len(table.outcomes) == 4
        methods = {outcome.method for outcome in table.outcomes}
        assert methods == {"plp", "dpsgd"}

    def test_series_extraction(self, runner):
        spec = SweepSpec(field="grouping_factor", values=(1, 3))
        table = runner.sweep(spec)
        series = table.series("grouping_factor")
        assert [value for value, _ in series] == [1, 3]

    def test_render_contains_headers_and_rows(self, runner):
        spec = SweepSpec(field="grouping_factor", values=(2,))
        text = runner.sweep(spec).render()
        assert "grouping_factor" in text
        assert "HR@10" in text
        assert "plp" in text

    def test_best(self, runner):
        spec = SweepSpec(field="grouping_factor", values=(1, 3))
        table = runner.sweep(spec)
        best = table.best(10)
        assert best.hr(10) == max(outcome.hr(10) for outcome in table.outcomes)

    def test_best_empty_rejected(self):
        with pytest.raises(ConfigError):
            ResultTable(title="empty").best()


class TestGrid:
    def test_cartesian_product(self, runner):
        table = runner.grid(
            [
                SweepSpec(field="grouping_factor", values=(1, 2)),
                SweepSpec(field="clip_bound", values=(0.3, 0.5)),
            ]
        )
        assert len(table.outcomes) == 4
        combos = {
            (o.parameters["grouping_factor"], o.parameters["clip_bound"])
            for o in table.outcomes
        }
        assert combos == {(1, 0.3), (1, 0.5), (2, 0.3), (2, 0.5)}
