"""Tests for the experiment-sweep framework."""

from __future__ import annotations

import pytest

from repro.core.config import PLPConfig
from repro.exceptions import ConfigError
from repro.experiments import ExperimentRunner, ResultTable, RunOutcome, SweepSpec


@pytest.fixture()
def runner(split_dataset) -> ExperimentRunner:
    train, holdout = split_dataset
    base = PLPConfig(
        embedding_dim=8,
        num_negatives=4,
        sampling_probability=0.2,
        noise_multiplier=2.0,
        epsilon=50.0,
        max_steps=4,
    )
    return ExperimentRunner(train, holdout, base_config=base, seed=5)


class TestSweepSpec:
    def test_defaults_label_to_field(self):
        spec = SweepSpec(field="grouping_factor", values=(1, 2))
        assert spec.label == "grouping_factor"

    def test_rejects_unknown_field(self):
        with pytest.raises(ConfigError):
            SweepSpec(field="warp_drive", values=(1,))

    def test_rejects_empty_values(self):
        with pytest.raises(ConfigError):
            SweepSpec(field="grouping_factor", values=())


class TestRunOne:
    def test_returns_outcome(self, runner):
        outcome = runner.run_one({"grouping_factor": 2})
        assert outcome.method == "plp"
        assert outcome.steps == 4
        assert 0.0 <= outcome.hr(10) <= 1.0
        assert outcome.parameters == {"grouping_factor": 2}

    def test_dpsgd_method(self, runner):
        outcome = runner.run_one(method="dpsgd")
        assert outcome.method == "dpsgd"

    def test_unknown_method_rejected(self, runner):
        with pytest.raises(ConfigError):
            runner.run_one(method="magic")

    def test_deterministic_per_offset(self, runner):
        a = runner.run_one({"grouping_factor": 2}, seed_offset=1)
        b = runner.run_one({"grouping_factor": 2}, seed_offset=1)
        assert a.hr(10) == b.hr(10)

    def test_explicit_rng_overrides_seed_offset(self, runner):
        a = runner.run_one({"grouping_factor": 2}, rng=99)
        b = runner.run_one({"grouping_factor": 2}, seed_offset=7, rng=99)
        assert a.hr(10) == b.hr(10)


class TestFailedRuns:
    """Runtime failures become failed RunOutcomes; misuse still raises."""

    def test_training_exception_becomes_failed_outcome(self, runner, monkeypatch):
        def boom(recommender):
            raise RuntimeError("evaluation exploded")

        monkeypatch.setattr(runner.evaluator, "evaluate", boom)
        outcome = runner.run_one({"grouping_factor": 2})
        assert not outcome.ok
        assert outcome.error is not None
        assert "RuntimeError: evaluation exploded" in outcome.error
        assert "Traceback" in outcome.error
        assert outcome.hit_rate == {}
        assert outcome.steps == 0
        assert outcome.epsilon_spent == 0.0
        assert outcome.parameters == {"grouping_factor": 2}

    def test_failed_outcome_hr_raises(self, runner, monkeypatch):
        monkeypatch.setattr(
            runner.evaluator, "evaluate", lambda rec: (_ for _ in ()).throw(ValueError)
        )
        outcome = runner.run_one()
        with pytest.raises(ConfigError, match="failed"):
            outcome.hr(10)

    def test_invalid_override_still_raises(self, runner):
        with pytest.raises(ConfigError):
            runner.run_one({"epsilon": -1.0})

    def test_unknown_override_still_raises(self, runner):
        with pytest.raises(ConfigError):
            runner.run_one({"warp_drive": 1})

    def test_table_skips_failed_runs(self, runner, monkeypatch):
        calls = {"n": 0}
        real_evaluate = runner.evaluator.evaluate

        def flaky(recommender):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("first run dies")
            return real_evaluate(recommender)

        monkeypatch.setattr(runner.evaluator, "evaluate", flaky)
        table = runner.sweep(SweepSpec(field="grouping_factor", values=(1, 3)))
        assert len(table.outcomes) == 2
        assert len(table.failed()) == 1
        assert [value for value, _ in table.series("grouping_factor")] == [3]
        assert table.best().parameters == {"grouping_factor": 3}
        text = table.render()
        assert "FAILED" in text

    def test_best_all_failed_rejected(self, runner, monkeypatch):
        monkeypatch.setattr(
            runner.evaluator,
            "evaluate",
            lambda rec: (_ for _ in ()).throw(RuntimeError("dead")),
        )
        table = runner.sweep(SweepSpec(field="grouping_factor", values=(1,)))
        with pytest.raises(ConfigError, match="no completed runs"):
            table.best()


class TestRunOutcomeSerialization:
    def test_round_trip(self, runner):
        outcome = runner.run_one({"grouping_factor": 2})
        clone = RunOutcome.from_dict(outcome.as_dict())
        assert clone == outcome
        assert all(isinstance(k, int) for k in clone.hit_rate)

    def test_failed_round_trip(self):
        outcome = RunOutcome(
            parameters={"epsilon": 1.0}, method="plp", hit_rate={},
            steps=0, epsilon_spent=0.0, train_seconds=0.1, error="Traceback: x",
        )
        clone = RunOutcome.from_dict(outcome.as_dict())
        assert not clone.ok
        assert clone.error == "Traceback: x"

    def test_malformed_payload_rejected(self):
        with pytest.raises(ConfigError, match="malformed"):
            RunOutcome.from_dict({"parameters": {}})
        with pytest.raises(ConfigError, match="dict"):
            RunOutcome.from_dict("nope")  # type: ignore[arg-type]


class TestSweep:
    def test_covers_all_values_and_methods(self, runner):
        spec = SweepSpec(field="grouping_factor", values=(1, 3))
        table = runner.sweep(spec, methods=("plp", "dpsgd"))
        assert len(table.outcomes) == 4
        methods = {outcome.method for outcome in table.outcomes}
        assert methods == {"plp", "dpsgd"}

    def test_series_extraction(self, runner):
        spec = SweepSpec(field="grouping_factor", values=(1, 3))
        table = runner.sweep(spec)
        series = table.series("grouping_factor")
        assert [value for value, _ in series] == [1, 3]

    def test_render_contains_headers_and_rows(self, runner):
        spec = SweepSpec(field="grouping_factor", values=(2,))
        text = runner.sweep(spec).render()
        assert "grouping_factor" in text
        assert "HR@10" in text
        assert "plp" in text

    def test_best(self, runner):
        spec = SweepSpec(field="grouping_factor", values=(1, 3))
        table = runner.sweep(spec)
        best = table.best(10)
        assert best.hr(10) == max(outcome.hr(10) for outcome in table.outcomes)

    def test_best_empty_rejected(self):
        with pytest.raises(ConfigError):
            ResultTable(title="empty").best()


class TestGrid:
    def test_cartesian_product(self, runner):
        table = runner.grid(
            [
                SweepSpec(field="grouping_factor", values=(1, 2)),
                SweepSpec(field="clip_bound", values=(0.3, 0.5)),
            ]
        )
        assert len(table.outcomes) == 4
        combos = {
            (o.parameters["grouping_factor"], o.parameters["clip_bound"])
            for o in table.outcomes
        }
        assert combos == {(1, 0.3), (1, 0.5), (2, 0.3), (2, 0.5)}
