"""Tests for repro.rng."""

from __future__ import annotations

import numpy as np
import pytest

from repro.rng import derive, derive_seed_sequence, ensure_rng, seed_sequence_of, spawn


class TestEnsureRng:
    def test_passthrough_generator(self):
        generator = np.random.default_rng(0)
        assert ensure_rng(generator) is generator

    def test_seed_determinism(self):
        a = ensure_rng(42).random(5)
        b = ensure_rng(42).random(5)
        assert np.array_equal(a, b)

    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)


class TestSpawn:
    def test_count(self):
        children = spawn(1, 3)
        assert len(children) == 3

    def test_children_independent_streams(self):
        children = spawn(1, 2)
        assert not np.array_equal(children[0].random(10), children[1].random(10))

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn(1, -1)


class TestDerive:
    def test_deterministic_for_same_tags(self):
        a = derive(np.random.default_rng(7), 3, 5).random(4)
        b = derive(np.random.default_rng(7), 3, 5).random(4)
        assert np.array_equal(a, b)

    def test_different_tags_differ(self):
        parent = np.random.default_rng(7)
        a = derive(parent, 1).random(4)
        parent2 = np.random.default_rng(7)
        b = derive(parent2, 2).random(4)
        assert not np.array_equal(a, b)


class TestDeriveDrawFree:
    def test_parent_stream_unchanged(self):
        # The parent must produce the same draws whether or not derive()
        # was called — deriving consumes nothing from the parent stream.
        untouched = np.random.default_rng(7).random(8)
        parent = np.random.default_rng(7)
        derive(parent, 0)
        derive(parent, 1, 2)
        assert np.array_equal(parent.random(8), untouched)

    def test_child_independent_of_parent_position(self):
        # Deriving before or after the parent has generated values gives
        # the same child stream (pure function of seed material + tags).
        fresh = np.random.default_rng(7)
        early = derive(fresh, 3).random(4)
        advanced = np.random.default_rng(7)
        advanced.random(100)
        late = derive(advanced, 3).random(4)
        assert np.array_equal(early, late)

    def test_tag_arity_namespacing(self):
        a = derive(7, 1).random(4)
        b = derive(7, 1, 0).random(4)
        assert not np.array_equal(a, b)

    def test_disjoint_from_spawn_children(self):
        spawned = spawn(7, 3)
        derived = [derive(7, tag) for tag in range(3)]
        for child in spawned:
            for other in derived:
                assert not np.array_equal(child.random(6), other.random(6))

    def test_seed_sequence_extends_parent_spawn_key(self):
        parent_key = seed_sequence_of(7).spawn_key
        child = derive_seed_sequence(7, 4, 2)
        assert child.entropy == seed_sequence_of(7).entropy
        assert child.spawn_key[: len(parent_key)] == parent_key
        assert child.spawn_key[-2:] == (4, 2)

    def test_per_bucket_streams_distinct_within_step(self):
        step = 17
        streams = [derive(0, step, bucket).random(6) for bucket in range(8)]
        for i in range(len(streams)):
            for j in range(i + 1, len(streams)):
                assert not np.array_equal(streams[i], streams[j])
