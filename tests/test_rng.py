"""Tests for repro.rng."""

from __future__ import annotations

import numpy as np
import pytest

from repro.rng import derive, ensure_rng, spawn


class TestEnsureRng:
    def test_passthrough_generator(self):
        generator = np.random.default_rng(0)
        assert ensure_rng(generator) is generator

    def test_seed_determinism(self):
        a = ensure_rng(42).random(5)
        b = ensure_rng(42).random(5)
        assert np.array_equal(a, b)

    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)


class TestSpawn:
    def test_count(self):
        children = spawn(1, 3)
        assert len(children) == 3

    def test_children_independent_streams(self):
        children = spawn(1, 2)
        assert not np.array_equal(children[0].random(10), children[1].random(10))

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn(1, -1)


class TestDerive:
    def test_deterministic_for_same_tags(self):
        a = derive(np.random.default_rng(7), 3, 5).random(4)
        b = derive(np.random.default_rng(7), 3, 5).random(4)
        assert np.array_equal(a, b)

    def test_different_tags_differ(self):
        parent = np.random.default_rng(7)
        a = derive(parent, 1).random(4)
        parent2 = np.random.default_rng(7)
        b = derive(parent2, 2).random(4)
        assert not np.array_equal(a, b)
