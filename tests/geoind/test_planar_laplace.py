"""Tests for the geo-indistinguishability planar Laplace mechanism."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.exceptions import ConfigError
from repro.geoind.planar_laplace import PlanarLaplaceMechanism


class TestRadiusDistribution:
    def test_mean_radius(self):
        # The planar Laplace radius follows Gamma(2, 1/eps): mean 2/eps.
        mechanism = PlanarLaplaceMechanism(epsilon=0.01)
        rng = np.random.default_rng(0)
        radii = [mechanism.sample_radius(rng) for _ in range(4000)]
        assert np.mean(radii) == pytest.approx(200.0, rel=0.05)
        assert mechanism.expected_radius() == pytest.approx(200.0)

    def test_radii_positive(self):
        mechanism = PlanarLaplaceMechanism(epsilon=0.05)
        rng = np.random.default_rng(1)
        assert all(mechanism.sample_radius(rng) > 0 for _ in range(200))

    def test_larger_epsilon_smaller_noise(self):
        rng_a = np.random.default_rng(2)
        rng_b = np.random.default_rng(2)
        strict = PlanarLaplaceMechanism(epsilon=0.001)
        loose = PlanarLaplaceMechanism(epsilon=0.1)
        strict_mean = np.mean([strict.sample_radius(rng_a) for _ in range(1000)])
        loose_mean = np.mean([loose.sample_radius(rng_b) for _ in range(1000)])
        assert loose_mean < strict_mean


class TestPerturbation:
    def test_xy_displacement_statistics(self):
        mechanism = PlanarLaplaceMechanism(epsilon=0.02)
        rng = np.random.default_rng(3)
        displacements = []
        for _ in range(2000):
            x, y = mechanism.perturb_xy(0.0, 0.0, rng)
            displacements.append(math.hypot(x, y))
        assert np.mean(displacements) == pytest.approx(100.0, rel=0.07)

    def test_angles_roughly_uniform(self):
        mechanism = PlanarLaplaceMechanism(epsilon=0.02)
        rng = np.random.default_rng(4)
        angles = []
        for _ in range(4000):
            x, y = mechanism.perturb_xy(0.0, 0.0, rng)
            angles.append(math.atan2(y, x))
        counts, _ = np.histogram(angles, bins=8, range=(-math.pi, math.pi))
        assert counts.min() > 0.7 * counts.mean()

    def test_latlon_stays_near_origin(self):
        # 200 m protection radius noise moves Tokyo coordinates by
        # thousandths of a degree, not degrees.
        mechanism = PlanarLaplaceMechanism.for_protection_radius(math.log(4), 200.0)
        rng = np.random.default_rng(5)
        lat, lon = mechanism.perturb_latlon(35.68, 139.76, rng)
        assert abs(lat - 35.68) < 0.1
        assert abs(lon - 139.76) < 0.1

    def test_latlon_validation(self):
        mechanism = PlanarLaplaceMechanism(epsilon=0.01)
        with pytest.raises(ConfigError):
            mechanism.perturb_latlon(95.0, 0.0)
        with pytest.raises(ConfigError):
            mechanism.perturb_latlon(0.0, 190.0)


class TestConstruction:
    def test_for_protection_radius(self):
        mechanism = PlanarLaplaceMechanism.for_protection_radius(math.log(4), 200.0)
        assert mechanism.epsilon == pytest.approx(math.log(4) / 200.0)

    def test_rejects_invalid(self):
        with pytest.raises(ConfigError):
            PlanarLaplaceMechanism(epsilon=0.0)
        with pytest.raises(ConfigError):
            PlanarLaplaceMechanism.for_protection_radius(0.0, 100.0)
        with pytest.raises(ConfigError):
            PlanarLaplaceMechanism.for_protection_radius(1.0, -5.0)
