"""Out-of-core training benchmarks as tests (repro.bench.run_out_of_core).

The quick smoke keeps tier-1 honest: a disk-backed corpus trains through
the sharded executor end to end and the report carries every promised
field. The slow test is the headline acceptance run — a million-user
corpus materialized straight to disk and trained under a hard RSS cap,
proving the streaming store never pulls the corpus into memory.
"""

from __future__ import annotations

import pytest

from repro.bench import run_out_of_core

REQUIRED_FIELDS = (
    "num_users",
    "num_checkins",
    "num_shards",
    "store_bytes",
    "build_seconds",
    "rounds",
    "workers",
    "sampling_probability",
    "train_seconds",
    "buckets_total",
    "buckets_per_second",
    "epsilon_spent",
    "peak_rss_bytes",
    "rss_cap_mb",
    "under_cap",
)


class TestOutOfCoreSmoke:
    def test_disk_backed_training_reports_every_field(self, tmp_path):
        report = run_out_of_core(
            users=2_000,
            rounds=1,
            workers=1,
            rss_cap_mb=2_048,
            seed=3,
            store_dir=tmp_path / "corpus",
        )
        section = report["out_of_core"]
        for field in REQUIRED_FIELDS:
            assert field in section, f"missing out_of_core.{field}"
        assert section["num_users"] == 2_000
        assert section["rounds"] == 1
        assert section["num_shards"] >= 1
        assert section["store_bytes"] > 0
        assert section["buckets_total"] > 0
        assert section["epsilon_spent"] > 0
        assert section["under_cap"] is True

    def test_store_dir_is_cleaned_up_when_temporary(self):
        report = run_out_of_core(users=500, rounds=1, workers=1, seed=4)
        assert report["out_of_core"]["num_users"] == 500
        assert report["out_of_core"]["rss_cap_mb"] is None
        assert report["out_of_core"]["under_cap"] is None


@pytest.mark.slow
class TestMillionUserCorpus:
    def test_million_users_train_under_rss_cap(self, tmp_path):
        """Acceptance: 1M+ user corpus, materialized to disk, trained
        out-of-core through the sharded executor with peak RSS bounded
        far below the corpus size (the store is ~2 GB on disk)."""
        report = run_out_of_core(
            users=1_000_000,
            rounds=2,
            workers=2,
            rss_cap_mb=1_536,
            seed=7,
            store_dir=tmp_path / "corpus",
        )
        section = report["out_of_core"]
        assert section["num_users"] == 1_000_000
        assert section["num_checkins"] > 10_000_000
        # The corpus dwarfs the cap: out-of-core or bust.
        assert section["store_bytes"] > section["rss_cap_mb"] * 1024 * 1024
        assert section["buckets_total"] > 0
        assert section["under_cap"] is True, (
            f"peak RSS {section['peak_rss_bytes'] / 2**20:.0f} MiB exceeded "
            f"the {section['rss_cap_mb']} MiB cap"
        )
