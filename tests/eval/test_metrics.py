"""Tests for repro.eval.metrics."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval.metrics import hit_rate_at_k, mean_reciprocal_rank, ndcg_at_k
from repro.exceptions import ConfigError

_rank_lists = st.lists(
    st.one_of(st.none(), st.integers(1, 1000)), min_size=1, max_size=50
)


class TestHitRate:
    def test_basic(self):
        assert hit_rate_at_k([1, 5, 11], k=10) == pytest.approx(2 / 3)

    def test_boundary_inclusive(self):
        assert hit_rate_at_k([10], k=10) == 1.0
        assert hit_rate_at_k([11], k=10) == 0.0

    def test_none_counts_as_miss(self):
        assert hit_rate_at_k([None, 1], k=5) == pytest.approx(0.5)

    def test_empty_is_nan(self):
        assert math.isnan(hit_rate_at_k([], k=5))

    def test_invalid_k(self):
        with pytest.raises(ConfigError):
            hit_rate_at_k([1], k=0)

    def test_invalid_rank(self):
        with pytest.raises(ConfigError):
            hit_rate_at_k([0], k=5)

    @given(ranks=_rank_lists, k=st.integers(1, 100))
    @settings(max_examples=60, deadline=None)
    def test_bounded(self, ranks, k):
        value = hit_rate_at_k(ranks, k)
        assert 0.0 <= value <= 1.0

    @given(ranks=_rank_lists)
    @settings(max_examples=60, deadline=None)
    def test_monotone_in_k(self, ranks):
        assert hit_rate_at_k(ranks, 5) <= hit_rate_at_k(ranks, 10) <= hit_rate_at_k(
            ranks, 20
        )


class TestMrr:
    def test_perfect(self):
        assert mean_reciprocal_rank([1, 1]) == 1.0

    def test_mixed(self):
        assert mean_reciprocal_rank([1, 2, 4]) == pytest.approx((1 + 0.5 + 0.25) / 3)

    def test_none_contributes_zero(self):
        assert mean_reciprocal_rank([1, None]) == pytest.approx(0.5)

    @given(ranks=_rank_lists)
    @settings(max_examples=60, deadline=None)
    def test_bounded(self, ranks):
        assert 0.0 <= mean_reciprocal_rank(ranks) <= 1.0


class TestNdcg:
    def test_rank_one_is_one(self):
        assert ndcg_at_k([1], k=10) == pytest.approx(1.0)

    def test_rank_three(self):
        assert ndcg_at_k([3], k=10) == pytest.approx(1.0 / math.log2(4.0))

    def test_beyond_k_is_zero(self):
        assert ndcg_at_k([11], k=10) == 0.0

    @given(ranks=_rank_lists, k=st.integers(1, 100))
    @settings(max_examples=60, deadline=None)
    def test_ndcg_below_hit_rate(self, ranks, k):
        # Discounted gain <= binary gain case by case.
        assert ndcg_at_k(ranks, k) <= hit_rate_at_k(ranks, k) + 1e-12
