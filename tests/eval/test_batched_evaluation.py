"""Loop vs batched evaluator paths must produce identical metrics.

This is the acceptance criterion for rewiring ``LeaveOneOutEvaluator``
onto ``score_batch``: because the batched exact kernel returns rows
bit-for-bit equal to ``score_all`` and ranks are comparison-based, the two
paths must agree on every rank, every skip, and every aggregate.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.popularity import PopularityRecommender
from repro.eval.evaluator import LeaveOneOutEvaluator
from repro.exceptions import ConfigError
from repro.models.embeddings import EmbeddingMatrix
from repro.models.recommender import NextLocationRecommender
from repro.models.vocabulary import LocationVocabulary
from repro.types import Trajectory

L = 50


def _trajectories(rng, n=60, max_len=9):
    trajectories = []
    for user in range(n):
        length = int(rng.integers(1, max_len))  # length-1 cases get skipped
        locations = tuple(int(t) for t in rng.integers(0, L, size=length))
        trajectories.append(Trajectory(user=user % 10, locations=locations))
    return trajectories


def _assert_identical(loop, batched):
    assert batched.ranks == loop.ranks
    assert batched.num_cases == loop.num_cases
    assert batched.num_skipped == loop.num_skipped
    assert batched.hit_rate == loop.hit_rate
    assert batched.ndcg == loop.ndcg
    assert batched.mrr == loop.mrr or (
        np.isnan(batched.mrr) and np.isnan(loop.mrr)
    )


@pytest.mark.parametrize("input_scope", ["session", "history"])
@pytest.mark.parametrize("batch_size", [1, 7, 256])
def test_batched_path_identical_to_loop(input_scope, batch_size):
    rng = np.random.default_rng(21)
    embeddings = EmbeddingMatrix(rng.normal(size=(L, 10)))
    recommender = NextLocationRecommender(embeddings)
    evaluator = LeaveOneOutEvaluator(
        _trajectories(rng), k_values=(1, 5, 10), input_scope=input_scope
    )
    loop = evaluator.evaluate(recommender, batched=False)
    batched = evaluator.evaluate(
        recommender, batched=True, batch_size=batch_size
    )
    assert loop.num_cases > 0
    _assert_identical(loop, batched)


def test_identical_with_vocabulary_and_unknown_pois():
    rng = np.random.default_rng(22)
    embeddings = EmbeddingMatrix(rng.normal(size=(L, 10)))
    vocabulary = LocationVocabulary.from_locations(
        [f"poi-{i}" for i in range(L)]
    )
    recommender = NextLocationRecommender(embeddings, vocabulary=vocabulary)
    trajectories = []
    for user in range(40):
        names = [
            f"poi-{t}" if t < L - 5 else f"stranger-{t}"
            for t in rng.integers(0, L + 10, size=int(rng.integers(2, 8)))
        ]
        trajectories.append(Trajectory(user=user, locations=tuple(names)))
    evaluator = LeaveOneOutEvaluator(trajectories, k_values=(5,))
    loop = evaluator.evaluate(recommender, batched=False)
    batched = evaluator.evaluate(recommender, batched=True)
    # Unknown targets / all-unknown inputs are skipped identically.
    assert loop.num_skipped > 0
    _assert_identical(loop, batched)


def test_identical_with_fallback_prior():
    rng = np.random.default_rng(23)
    embeddings = EmbeddingMatrix(rng.normal(size=(L, 10)))
    vocabulary = LocationVocabulary.from_locations(
        [f"poi-{i}" for i in range(L)], counts=list(range(L, 0, -1))
    )
    prior = rng.normal(size=L)
    recommender = NextLocationRecommender(
        embeddings, vocabulary=vocabulary, fallback_scores=prior
    )
    # Half the inputs contain no known POI -> answered by the prior.
    trajectories = [
        Trajectory(user=0, locations=("ghost-a", "ghost-b", "poi-1")),
        Trajectory(user=1, locations=("poi-2", "poi-3", "poi-4")),
        Trajectory(user=2, locations=("ghost-c", "poi-5")),
    ]
    evaluator = LeaveOneOutEvaluator(trajectories, k_values=(5,))
    loop = evaluator.evaluate(recommender, batched=False)
    batched = evaluator.evaluate(recommender, batched=True)
    assert loop.num_cases == 3  # fallback answers, nothing skipped
    _assert_identical(loop, batched)


def test_default_auto_detects_batched_path():
    rng = np.random.default_rng(24)
    embeddings = EmbeddingMatrix(rng.normal(size=(L, 10)))
    recommender = NextLocationRecommender(embeddings)
    evaluator = LeaveOneOutEvaluator(_trajectories(rng, n=20), k_values=(5,))
    auto = evaluator.evaluate(recommender)  # batched=None -> batched
    forced = evaluator.evaluate(recommender, batched=True)
    _assert_identical(forced, auto)


def test_popularity_baseline_falls_back_to_loop():
    rng = np.random.default_rng(25)
    recommender = PopularityRecommender(
        [rng.integers(0, 20, size=30).tolist()], num_locations=20
    )
    # It has score_batch but no encode_query, so auto-detection must not
    # route it through the batched path.
    assert not hasattr(recommender, "encode_query")
    trajectories = [
        Trajectory(user=0, locations=(1, 2, 3)),
        Trajectory(user=1, locations=(4, 0)),
    ]
    evaluator = LeaveOneOutEvaluator(trajectories, k_values=(5,))
    # batched=None silently uses the loop; batched=True must refuse.
    result = evaluator.evaluate(recommender)
    assert result.num_cases == 2
    with pytest.raises(ConfigError, match="score_batch"):
        evaluator.evaluate(recommender, batched=True)


def test_invalid_batch_size_rejected():
    rng = np.random.default_rng(26)
    embeddings = EmbeddingMatrix(rng.normal(size=(L, 10)))
    recommender = NextLocationRecommender(embeddings)
    evaluator = LeaveOneOutEvaluator(_trajectories(rng, n=5), k_values=(5,))
    with pytest.raises(ConfigError):
        evaluator.evaluate(recommender, batch_size=0)
