"""Tests for the leave-one-out evaluator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval.evaluator import LeaveOneOutEvaluator
from repro.exceptions import ConfigError
from repro.models.embeddings import EmbeddingMatrix
from repro.models.recommender import NextLocationRecommender
from repro.models.vocabulary import LocationVocabulary
from repro.types import Trajectory


@pytest.fixture()
def perfect_embeddings() -> EmbeddingMatrix:
    """Orthogonal clusters {0,1} and {2,3}: next location is same-cluster."""
    rows = np.array(
        [
            [1.0, 0.02, 0.0],
            [1.0, -0.02, 0.0],
            [0.0, 0.02, 1.0],
            [0.0, -0.02, 1.0],
        ]
    )
    return EmbeddingMatrix(rows)


class TestEvaluate:
    def test_clustered_targets_rank_high(self, perfect_embeddings):
        trajectories = [
            Trajectory(user=1, locations=(0, 1)),
            Trajectory(user=2, locations=(2, 3)),
        ]
        evaluator = LeaveOneOutEvaluator(trajectories, k_values=(2,))
        result = evaluator.evaluate(NextLocationRecommender(perfect_embeddings))
        assert result.num_cases == 2
        assert result.hit_rate[2] == 1.0

    def test_cross_cluster_target_misses(self, perfect_embeddings):
        trajectories = [Trajectory(user=1, locations=(0, 1, 2))]
        evaluator = LeaveOneOutEvaluator(trajectories, k_values=(2,))
        result = evaluator.evaluate(NextLocationRecommender(perfect_embeddings))
        assert result.hit_rate[2] == 0.0

    def test_rank_recorded(self, perfect_embeddings):
        trajectories = [Trajectory(user=1, locations=(0, 1))]
        evaluator = LeaveOneOutEvaluator(trajectories, k_values=(1, 2))
        result = evaluator.evaluate(NextLocationRecommender(perfect_embeddings))
        assert len(result.ranks) == 1
        assert 1 <= result.ranks[0] <= 4

    def test_short_trajectories_skipped(self, perfect_embeddings):
        trajectories = [Trajectory(user=1, locations=(0,))]
        evaluator = LeaveOneOutEvaluator(trajectories)
        result = evaluator.evaluate(NextLocationRecommender(perfect_embeddings))
        assert result.num_cases == 0
        assert result.num_skipped == 1

    def test_out_of_vocabulary_target_skipped(self, perfect_embeddings):
        vocabulary = LocationVocabulary.from_sequences([["a", "b", "c", "d"]])
        trajectories = [Trajectory(user=1, locations=("a", "unknown"))]
        evaluator = LeaveOneOutEvaluator(trajectories)
        recommender = NextLocationRecommender(
            perfect_embeddings, vocabulary=vocabulary
        )
        result = evaluator.evaluate(recommender)
        assert result.num_skipped == 1

    def test_summary_string(self, perfect_embeddings):
        trajectories = [Trajectory(user=1, locations=(0, 1))]
        result = LeaveOneOutEvaluator(trajectories, k_values=(5,)).evaluate(
            NextLocationRecommender(perfect_embeddings)
        )
        assert "HR@5" in result.summary()
        assert "cases=1" in result.summary()

    def test_invalid_k_values(self):
        with pytest.raises(ConfigError):
            LeaveOneOutEvaluator([], k_values=())
        with pytest.raises(ConfigError):
            LeaveOneOutEvaluator([], k_values=(0,))

    def test_evaluate_embeddings_convenience(self, perfect_embeddings):
        trajectories = [Trajectory(user=1, locations=(0, 1))]
        evaluator = LeaveOneOutEvaluator(trajectories, k_values=(2,))
        result = evaluator.evaluate_embeddings(perfect_embeddings)
        assert result.num_cases == 1


class TestInputScope:
    def test_history_scope_uses_movement_profile(self, perfect_embeddings):
        # User 1's earlier trajectory lives in cluster {0,1}; the current
        # session starts in cluster {2,3} but its single input visit is
        # unknown... instead: current session input is location 2, target 3.
        # Session scope: profile = {2} -> same-cluster target ranks first.
        # History scope: profile = mean of {0, 1, 2} -> pulled toward the
        # other cluster, so the target's rank worsens.
        trajectories = [
            Trajectory(user=1, locations=(0, 1)),
            Trajectory(user=1, locations=(2, 3)),
        ]
        session = LeaveOneOutEvaluator(trajectories, k_values=(1,))
        history = LeaveOneOutEvaluator(
            trajectories, k_values=(1,), input_scope="history"
        )
        recommender = NextLocationRecommender(perfect_embeddings)
        session_result = session.evaluate(recommender)
        history_result = history.evaluate(recommender)
        # Second case: session rank of target 3 (given 2) beats history
        # rank (given 0, 1, 2).
        assert session_result.ranks[1] <= history_result.ranks[1]

    def test_history_scope_ignores_other_users(self, perfect_embeddings):
        # An earlier trajectory from a *different* user must not leak into
        # this user's profile.
        trajectories = [
            Trajectory(user=9, locations=(0, 1)),
            Trajectory(user=1, locations=(2, 3)),
        ]
        history = LeaveOneOutEvaluator(
            trajectories, k_values=(1,), input_scope="history"
        )
        session = LeaveOneOutEvaluator(trajectories, k_values=(1,))
        recommender = NextLocationRecommender(perfect_embeddings)
        assert (
            history.evaluate(recommender).ranks
            == session.evaluate(recommender).ranks
        )

    def test_invalid_scope_rejected(self):
        with pytest.raises(ConfigError):
            LeaveOneOutEvaluator([], input_scope="universe")


class TestRankSemantics:
    def test_rank_is_one_plus_strictly_greater(self):
        # Target scores below exactly one other location -> rank 2.
        rows = np.array([[1.0, 0.0], [0.9, 0.1], [0.0, 1.0]])
        embeddings = EmbeddingMatrix(rows)
        trajectories = [Trajectory(user=1, locations=(0, 1))]
        evaluator = LeaveOneOutEvaluator(trajectories, k_values=(1, 2))
        result = evaluator.evaluate(NextLocationRecommender(embeddings))
        assert result.ranks == [2]
        assert result.hit_rate[1] == 0.0
        assert result.hit_rate[2] == 1.0
