"""Tests for repro.eval.stats."""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval.stats import paired_t_test
from repro.exceptions import ConfigError


class TestPairedTTest:
    def test_clear_difference_significant(self):
        rng = np.random.default_rng(0)
        baseline = rng.normal(0.10, 0.01, size=30)
        improved = baseline + 0.05 + rng.normal(0.0, 0.005, size=30)
        result = paired_t_test(improved, baseline)
        assert result.p_value < 0.01
        assert result.significant(alpha=0.01)
        assert result.mean_difference == pytest.approx(0.05, abs=0.01)
        assert result.num_pairs == 30

    def test_identical_distributions_not_significant(self):
        rng = np.random.default_rng(1)
        a = rng.normal(0.2, 0.02, size=30)
        b = a + rng.normal(0.0, 0.001, size=30)
        result = paired_t_test(a, b)
        assert not result.significant(alpha=0.001)

    def test_sign_of_statistic(self):
        result = paired_t_test([2.0, 3.1, 4.0], [1.0, 2.0, 3.05])
        assert result.statistic > 0
        result = paired_t_test([1.0, 2.0, 3.05], [2.0, 3.1, 4.0])
        assert result.statistic < 0

    def test_mismatched_lengths(self):
        with pytest.raises(ConfigError):
            paired_t_test([1.0, 2.0], [1.0])

    def test_too_few_pairs(self):
        with pytest.raises(ConfigError):
            paired_t_test([1.0], [2.0])
