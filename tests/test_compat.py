"""Sweep of the central deprecation machinery (repro._compat).

Every live shim must be registered in DEPRECATIONS, and every registered
shim must warn exactly once per use, naming its canonical replacement.
A shim added without an exerciser here fails the completeness test.
"""

from __future__ import annotations

import warnings

import pytest

import repro.api  # noqa: F401 - registers the serve() shims
import repro.cli  # noqa: F401 - registers the CLI flag shims
import repro.core.config  # noqa: F401 - registers the PLPConfig kwarg shims
import repro.core.engine.observers  # noqa: F401 - registers StepObserver
import repro.serving.metrics  # noqa: F401 - registers ServingObserver
from repro._compat import (
    DEPRECATIONS,
    register_deprecation,
    resolve_alias,
    warn_deprecated,
)
from repro.core.config import _DEPRECATED_ALIASES as _CONFIG_ALIASES
from repro.core.config import PLPConfig


def _use_config_alias(alias):
    canonical = _CONFIG_ALIASES[alias]

    def exercise():
        # Re-apply the canonical field's default so the value is valid.
        PLPConfig().with_overrides(**{alias: getattr(PLPConfig(), canonical)})

    return exercise


def _use_cli_flag(flag, value):
    def exercise():
        from repro.cli import _build_parser

        argv = ["train", "--synthetic", "--out", "m.npz", flag, value]
        _build_parser().parse_args(argv)

    return exercise


def _use_api_serve_path():
    # The asgi front end is mocked out: only the shim's warning matters.
    from unittest import mock

    with mock.patch("repro.serving.asgi.serve"):
        repro.api.serve("m.npz")


def _use_api_serve_include_counts():
    from unittest import mock

    with mock.patch("repro.serving.asgi.serve"):
        repro.api.serve(include_counts=True)


def _use_serve_model_path_flag():
    from repro.cli import _build_parser, _serve_config_from_args

    args = _build_parser().parse_args(["serve", "--model", "m.npz"])
    _serve_config_from_args(args)


def _use_observer_alias(module, name):
    def exercise():
        import importlib

        getattr(importlib.import_module(module), name)()

    return exercise


# One exerciser per DEPRECATIONS key; the completeness test fails when a
# new shim is registered without a matching entry here.
EXERCISERS = {
    **{
        f"PLPConfig({alias}=...)": _use_config_alias(alias)
        for alias in _CONFIG_ALIASES
    },
    "repro.api.serve(model_path)": _use_api_serve_path,
    "repro.api.serve(include_counts=...)": _use_api_serve_include_counts,
    "repro serve --model PATH": _use_serve_model_path_flag,
    "repro train --negatives": _use_cli_flag("--negatives", "4"),
    "repro train --metrics-jsonl": _use_cli_flag("--metrics-jsonl", "m.jsonl"),
    "repro.core.engine.observers.StepObserver": _use_observer_alias(
        "repro.core.engine.observers", "StepObserver"
    ),
    "repro.serving.metrics.ServingObserver": _use_observer_alias(
        "repro.serving.metrics", "ServingObserver"
    ),
}


class TestInventoryCompleteness:
    def test_every_registered_shim_has_an_exerciser(self):
        assert set(DEPRECATIONS) == set(EXERCISERS)

    def test_every_replacement_is_nonempty(self):
        for old, replacement in DEPRECATIONS.items():
            assert replacement, f"{old} registered without a replacement"


class TestEveryShimWarnsExactlyOnce:
    @pytest.mark.parametrize("old", sorted(EXERCISERS))
    def test_single_warning_names_replacement(self, old):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            EXERCISERS[old]()
        deprecations = [
            item for item in caught if item.category is DeprecationWarning
        ]
        assert len(deprecations) == 1, (
            f"{old} emitted {len(deprecations)} DeprecationWarnings, want 1"
        )
        message = str(deprecations[0].message)
        # The replacement must be named; quoting and kwarg suffix may differ.
        replacement = DEPRECATIONS[old].removesuffix("=...").strip("'\"")
        assert replacement in message.replace("'", "")


class TestPrimitives:
    def test_warn_deprecated_message_shape(self):
        with pytest.warns(DeprecationWarning, match=r"old is deprecated; use new instead"):
            warn_deprecated("old", "new")

    def test_warn_deprecated_custom_verb(self):
        with pytest.warns(DeprecationWarning, match="subclass new"):
            warn_deprecated("old", "new", verb="subclass")

    def test_resolve_alias_passthrough_is_silent(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert resolve_alias("canonical", {"a": "b"}, context="test") == "canonical"
        assert not caught

    def test_resolve_alias_rewrites_and_warns(self):
        with pytest.warns(DeprecationWarning, match="'b'"):
            assert resolve_alias("a", {"a": "b"}, context="test") == "b"

    def test_register_deprecation_is_idempotent(self):
        before = dict(DEPRECATIONS)
        for old, replacement in before.items():
            register_deprecation(old, replacement)
        assert DEPRECATIONS == before

    def test_observer_alias_subclass_warns_once(self):
        from repro.core.engine.observers import StepObserver

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")

            class _Legacy(StepObserver):  # noqa: F811 - exercise the shim
                pass

        deprecations = [
            item for item in caught if item.category is DeprecationWarning
        ]
        assert len(deprecations) == 1
        assert "subclass" in str(deprecations[0].message)

    def test_observer_subclass_instantiation_does_not_rewarn(self):
        with warnings.catch_warnings(record=True):
            warnings.simplefilter("always")
            from repro.core.engine.observers import StepObserver

            class _Legacy(StepObserver):
                pass

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            _Legacy()
        assert not [
            item for item in caught if item.category is DeprecationWarning
        ]
