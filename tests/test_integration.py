"""End-to-end integration tests across the full pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    CheckinDataset,
    LeaveOneOutEvaluator,
    NonPrivateTrainer,
    PLPConfig,
    PrivateLocationPredictor,
    SyntheticConfig,
    UserLevelDPSGD,
    generate_checkins,
    holdout_users_split,
    paper_preprocessing,
    sessionize_dataset,
)
from repro.baselines import PopularityRecommender


class TestFullPipeline:
    def test_generate_to_recommendation(self, split_dataset, holdout_trajectories):
        train, _ = split_dataset
        config = PLPConfig(
            embedding_dim=8,
            num_negatives=4,
            sampling_probability=0.2,
            noise_multiplier=2.0,
            epsilon=50.0,
            max_steps=10,
        )
        trainer = PrivateLocationPredictor(config, rng=0)
        trainer.fit(train)

        recommender = trainer.recommender()
        for trajectory in holdout_trajectories[:10]:
            recent = list(trajectory.locations[:-1])
            known = trainer.vocabulary.encode_known(recent)
            if not known:
                continue
            results = recommender.recommend(recent, top_k=5)
            assert len(results) == 5
            # Recommendations are known POI ids.
            for location, score in results:
                assert location in trainer.vocabulary
                assert np.isfinite(score)

    def test_pipeline_determinism(self, split_dataset, holdout_trajectories):
        train, _ = split_dataset
        evaluator = LeaveOneOutEvaluator(holdout_trajectories, k_values=(10,))
        config = PLPConfig(
            embedding_dim=8,
            num_negatives=4,
            sampling_probability=0.2,
            noise_multiplier=2.0,
            epsilon=50.0,
            max_steps=8,
        )
        results = []
        for _ in range(2):
            trainer = PrivateLocationPredictor(config, rng=77)
            trainer.fit(train)
            results.append(evaluator.evaluate(trainer.recommender()).hit_rate[10])
        assert results[0] == results[1]

    def test_noiseless_single_bucket_learns(self, split_dataset):
        # sigma = 0, q = 1, lambda = all users, huge clip: PLP degenerates
        # to plain (non-private) federated learning with one bucket; the
        # training loss must fall substantially.
        train, _ = split_dataset
        config = PLPConfig(
            embedding_dim=8,
            num_negatives=4,
            sampling_probability=1.0,
            noise_multiplier=0.0,
            grouping_factor=train.num_users,
            clip_bound=1e9,
            epsilon=1.0,
            max_steps=6,
            learning_rate=0.3,
        )
        trainer = PrivateLocationPredictor(config, rng=0)
        history = trainer.fit(train)
        losses = history.losses()
        assert losses[-1] < losses[0]

    def test_private_worse_or_equal_to_nonprivate(
        self, split_dataset, holdout_trajectories
    ):
        train, _ = split_dataset
        evaluator = LeaveOneOutEvaluator(holdout_trajectories, k_values=(20,))

        nonprivate = NonPrivateTrainer(embedding_dim=16, rng=0)
        nonprivate.fit(train, epochs=10)
        ceiling = evaluator.evaluate(nonprivate.recommender()).hit_rate[20]

        config = PLPConfig(
            embedding_dim=16,
            sampling_probability=0.2,
            noise_multiplier=1.5,
            epsilon=1.0,
        )
        private = PrivateLocationPredictor(config, rng=0)
        private.fit(train)
        private_hr = evaluator.evaluate(private.recommender()).hit_rate[20]
        # Privacy costs accuracy: allow slack for seed noise, but the
        # private model must not beat the ceiling outright.
        assert private_hr <= ceiling + 0.05

    def test_shared_evaluator_across_model_types(
        self, split_dataset, holdout_trajectories
    ):
        # The same evaluator instance must accept skip-gram recommenders
        # (vocabulary mode) and baseline recommenders (token mode).
        train, _ = split_dataset
        nonprivate = NonPrivateTrainer(embedding_dim=8, rng=0)
        nonprivate.fit(train, epochs=2)
        vocabulary = nonprivate.vocabulary

        raw_evaluator = LeaveOneOutEvaluator(holdout_trajectories, k_values=(10,))
        raw_result = raw_evaluator.evaluate(nonprivate.recommender())

        from repro.types import Trajectory

        token_trajectories = [
            Trajectory(
                user=t.user, locations=tuple(vocabulary.encode_known(t.locations))
            )
            for t in holdout_trajectories
        ]
        token_trajectories = [t for t in token_trajectories if len(t) >= 2]
        token_evaluator = LeaveOneOutEvaluator(token_trajectories, k_values=(10,))
        sequences = [vocabulary.encode_known(h.locations()) for h in train]
        popularity = PopularityRecommender(sequences, vocabulary.size)
        pop_result = token_evaluator.evaluate(popularity)

        assert raw_result.num_cases > 0
        assert pop_result.num_cases > 0

    def test_dpsgd_and_plp_share_budget_schedule(self, split_dataset):
        # Identical (q, sigma, epsilon) => identical step counts at the
        # budget stop, regardless of grouping.
        train, _ = split_dataset
        config = PLPConfig(
            embedding_dim=8,
            num_negatives=4,
            sampling_probability=0.1,
            noise_multiplier=2.0,
            epsilon=0.5,
        )
        plp_history = PrivateLocationPredictor(config, rng=0).fit(train)
        dpsgd_history = UserLevelDPSGD(config, rng=0).fit(train)
        assert len(plp_history) == len(dpsgd_history)
        assert plp_history.stop_reason == dpsgd_history.stop_reason == "budget_exhausted"


class TestDatasetRegeneration:
    def test_same_seed_same_dataset(self):
        config = SyntheticConfig(num_users=30, num_locations=25, num_clusters=4)
        a = CheckinDataset(paper_preprocessing(generate_checkins(config, rng=5)))
        b = CheckinDataset(paper_preprocessing(generate_checkins(config, rng=5)))
        assert a.num_checkins == b.num_checkins
        assert a.user_sequences() == b.user_sequences()

    def test_split_then_sessionize_consistency(self, small_dataset):
        train, holdout = holdout_users_split(small_dataset, 10, rng=3)
        trajectories = sessionize_dataset(holdout)
        holdout_users = set(holdout.users)
        assert all(t.user in holdout_users for t in trajectories)
        train_users = set(train.users)
        assert not holdout_users & train_users
