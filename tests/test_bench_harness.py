"""Tests for the benchmark harness utilities (benchmarks/conftest.py)."""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.conftest import (  # noqa: E402
    BENCH_BASE,
    SCALES,
    BenchScale,
    bench_scale,
    write_table,
)


class TestScales:
    def test_all_profiles_present(self):
        assert set(SCALES) == {"smoke", "default", "paper"}

    def test_smoke_is_small(self):
        smoke = SCALES["smoke"]
        default = SCALES["default"]
        assert smoke.num_users < default.num_users
        assert smoke.private_max_steps is not None
        assert default.private_max_steps is None

    def test_paper_scale_uses_more_seeds(self):
        assert len(SCALES["paper"].seeds) >= len(SCALES["default"].seeds)

    def test_env_selection(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "smoke")
        assert bench_scale().name == "smoke"

    def test_default_selection(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert bench_scale().name == "default"

    def test_unknown_scale_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "galactic")
        with pytest.raises(ValueError):
            bench_scale()


class TestBenchBase:
    def test_validated_configuration(self):
        # The base config must construct a valid PLPConfig.
        from repro.core.config import PLPConfig

        config = PLPConfig(**BENCH_BASE)
        assert config.grouping_factor == 4
        assert config.epsilon == 2.0


class TestWriteTable:
    def test_writes_file_and_formats(self, tmp_path, monkeypatch):
        import benchmarks.conftest as harness

        monkeypatch.setattr(harness, "RESULTS_DIR", tmp_path)
        text = write_table(
            "unit_test_table",
            "A title",
            ["name", "value"],
            [["alpha", 0.12345], ["beta", 2]],
        )
        saved = (tmp_path / "unit_test_table.txt").read_text(encoding="utf-8")
        assert saved == text
        assert "A title" in text
        assert "0.1235" in text  # floats rendered at 4 decimals
        assert "alpha" in text

    def test_empty_rows(self, tmp_path, monkeypatch):
        import benchmarks.conftest as harness

        monkeypatch.setattr(harness, "RESULTS_DIR", tmp_path)
        text = write_table("empty_table", "Empty", ["a", "b"], [])
        assert "Empty" in text
