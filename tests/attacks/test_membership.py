"""Tests for the membership-inference audit."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks.membership import (
    MembershipInferenceAttack,
    attack_auc,
    membership_advantage,
    trajectory_affinity,
)
from repro.exceptions import ConfigError
from repro.models.embeddings import EmbeddingMatrix
from repro.models.vocabulary import LocationVocabulary


class TestAttackAuc:
    def test_perfect_separation(self):
        assert attack_auc([2.0, 3.0], [0.0, 1.0]) == 1.0

    def test_inverted_separation(self):
        assert attack_auc([0.0, 1.0], [2.0, 3.0]) == 0.0

    def test_indistinguishable(self):
        assert attack_auc([1.0, 2.0], [1.0, 2.0]) == 0.5

    def test_ties_half_weight(self):
        assert attack_auc([1.0], [1.0]) == 0.5

    def test_requires_both_groups(self):
        with pytest.raises(ConfigError):
            attack_auc([], [1.0])


class TestMembershipAdvantage:
    def test_perfect_attack(self):
        assert membership_advantage([2.0, 3.0], [0.0, 1.0]) == 1.0

    def test_useless_attack(self):
        assert membership_advantage([1.0, 1.0], [1.0, 1.0]) == 0.0

    def test_partial(self):
        advantage = membership_advantage([1.0, 3.0], [0.0, 2.0])
        assert 0.0 < advantage < 1.0


class TestTrajectoryAffinity:
    def test_coherent_cluster_scores_high(self):
        # Locations 0, 1 nearly parallel; 2 orthogonal.
        matrix = EmbeddingMatrix(
            np.array([[1.0, 0.01], [1.0, -0.01], [0.0, 1.0]])
        )
        coherent = trajectory_affinity(matrix, [[0, 1, 0, 1]])
        incoherent = trajectory_affinity(matrix, [[0, 2, 0, 2]])
        assert coherent > incoherent

    def test_empty_user_scores_zero(self):
        matrix = EmbeddingMatrix(np.eye(3))
        assert trajectory_affinity(matrix, [[5][:0], [0]]) == 0.0

    def test_self_pairs_ignored(self):
        matrix = EmbeddingMatrix(np.eye(3))
        # Sequence of one repeated location: all pairs are self-pairs.
        assert trajectory_affinity(matrix, [[1, 1, 1]]) == 0.0


class TestMembershipInferenceAttack:
    def test_detects_memorizing_model(self):
        # Embeddings hand-crafted to memorize members' co-visit structure:
        # members co-visit within {0,1} and {2,3}; non-members' pairs span
        # the two groups.
        rng = np.random.default_rng(0)
        matrix = np.array(
            [[1.0, 0.0], [1.0, 0.05], [0.0, 1.0], [0.05, 1.0]]
        ) + rng.normal(scale=0.01, size=(4, 2))
        attack = MembershipInferenceAttack(EmbeddingMatrix(matrix))
        members = [[[0, 1, 0, 1]], [[2, 3, 2]]]
        nonmembers = [[[0, 2, 0, 2]], [[1, 3, 1]]]
        result = attack.audit(members, nonmembers)
        assert result.auc == 1.0
        assert result.advantage == 1.0
        assert "AUC" in result.summary()

    def test_random_embeddings_near_chance(self):
        rng = np.random.default_rng(1)
        attack = MembershipInferenceAttack(
            EmbeddingMatrix(rng.normal(size=(60, 16)))
        )
        members = [
            [list(rng.integers(0, 60, size=12))] for _ in range(25)
        ]
        nonmembers = [
            [list(rng.integers(0, 60, size=12))] for _ in range(25)
        ]
        result = attack.audit(members, nonmembers)
        assert 0.2 < result.auc < 0.8  # no systematic separation

    def test_vocabulary_mode_drops_unknowns(self):
        vocabulary = LocationVocabulary.from_sequences([["a", "b", "c"]])
        attack = MembershipInferenceAttack(
            EmbeddingMatrix(np.eye(3)), vocabulary=vocabulary
        )
        score = attack.score_user([["a", "b", "ghost"]])
        assert np.isfinite(score)

    def test_invalid_window(self):
        with pytest.raises(ConfigError):
            MembershipInferenceAttack(EmbeddingMatrix(np.eye(2)), window=0)


class TestEndToEndAudit:
    def test_private_model_resists_attack(self, split_dataset):
        # Train a PLP model and audit it: at epsilon = 2 with real noise
        # the attack must stay near chance level.
        from repro.core.config import PLPConfig
        from repro.core.trainer import PrivateLocationPredictor

        train, holdout = split_dataset
        config = PLPConfig(
            embedding_dim=8,
            num_negatives=4,
            sampling_probability=0.2,
            noise_multiplier=2.0,
            epsilon=2.0,
        )
        trainer = PrivateLocationPredictor(config, rng=0)
        trainer.fit(train)
        attack = MembershipInferenceAttack(
            trainer.embeddings(), vocabulary=trainer.vocabulary
        )
        members = [[history.locations()] for history in train][:30]
        nonmembers = [[history.locations()] for history in holdout]
        result = attack.audit(members, nonmembers)
        assert 0.25 < result.auc < 0.75
