"""Tests for the matrix-factorization baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.matrix_factorization import MatrixFactorizationRecommender
from repro.exceptions import ConfigError, DataError


def _block_sequences() -> list[list[int]]:
    """Users 0-4 visit locations {0..3}; users 5-9 visit {4..7}."""
    rng = np.random.default_rng(0)
    sequences = []
    for _ in range(5):
        sequences.append(list(rng.integers(0, 4, size=12)))
    for _ in range(5):
        sequences.append(list(rng.integers(4, 8, size=12)))
    return sequences


class TestMatrixFactorization:
    @pytest.fixture(scope="class")
    def model(self):
        return MatrixFactorizationRecommender(
            _block_sequences(), num_locations=8, factors=8, epochs=12, rng=1
        )

    def test_block_structure_recovered(self, model):
        # Folding in block-A locations should score block A above block B.
        scores = model.score_all([0, 1, 2])
        assert scores[:4].mean() > scores[4:].mean()

    def test_other_block(self, model):
        scores = model.score_all([4, 5])
        assert scores[4:].mean() > scores[:4].mean()

    def test_recommend_interface(self, model):
        results = model.recommend([0, 1], top_k=4)
        assert len(results) == 4
        tokens = [token for token, _ in results]
        # Mostly same-block recommendations.
        assert sum(1 for t in tokens if t < 4) >= 3

    def test_empty_recent_rejected(self, model):
        with pytest.raises(ConfigError):
            model.score_all([])

    def test_out_of_range_recent_rejected(self, model):
        with pytest.raises(ConfigError):
            model.score_all([99])

    def test_rejects_bad_construction(self):
        with pytest.raises(DataError):
            MatrixFactorizationRecommender([[9]], num_locations=2)
        with pytest.raises(DataError):
            MatrixFactorizationRecommender([], num_locations=2)
        with pytest.raises(ConfigError):
            MatrixFactorizationRecommender([[0]], num_locations=2, factors=0)
        with pytest.raises(ConfigError):
            MatrixFactorizationRecommender([[0]], num_locations=2, epochs=0)

    def test_deterministic(self):
        a = MatrixFactorizationRecommender(
            _block_sequences(), num_locations=8, factors=4, epochs=2, rng=5
        )
        b = MatrixFactorizationRecommender(
            _block_sequences(), num_locations=8, factors=4, epochs=2, rng=5
        )
        assert np.allclose(a.score_all([0]), b.score_all([0]))
