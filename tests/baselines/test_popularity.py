"""Tests for the popularity baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.popularity import PopularityRecommender
from repro.exceptions import DataError


class TestPopularityRecommender:
    def test_ranks_by_frequency(self):
        sequences = [[0, 0, 0, 1, 1, 2]]
        model = PopularityRecommender(sequences, num_locations=4)
        top = [token for token, _ in model.recommend([3], top_k=3)]
        assert top == [0, 1, 2]

    def test_scores_are_a_distribution(self):
        model = PopularityRecommender([[0, 1, 1]], num_locations=3)
        scores = model.score_all([0])
        assert scores.sum() == pytest.approx(1.0)
        assert np.all(scores >= 0)

    def test_query_independent(self):
        model = PopularityRecommender([[0, 1, 2]], num_locations=3)
        assert np.array_equal(model.score_all([0]), model.score_all([2]))

    def test_unvisited_locations_score_zero(self):
        model = PopularityRecommender([[0]], num_locations=3)
        scores = model.score_all([0])
        assert scores[1] == 0.0
        assert scores[2] == 0.0

    def test_out_of_range_token_rejected(self):
        with pytest.raises(DataError):
            PopularityRecommender([[5]], num_locations=3)

    def test_empty_training(self):
        model = PopularityRecommender([], num_locations=3)
        assert np.all(model.score_all([0]) == 0.0)
