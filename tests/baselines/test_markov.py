"""Tests for the Markov-chain baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.markov import MarkovChainRecommender
from repro.exceptions import ConfigError, DataError


class TestOrderOne:
    def test_learns_transitions(self):
        # 0 -> 1 always; 1 -> 2 always.
        sequences = [[0, 1, 2], [0, 1, 2], [0, 1]]
        model = MarkovChainRecommender(sequences, num_locations=3, order=1)
        scores = model.score_all([0])
        assert np.argmax(scores) == 1
        scores = model.score_all([1])
        assert np.argmax(scores) == 2

    def test_transition_probabilities(self):
        # From 0: goes to 1 twice, to 2 once.
        sequences = [[0, 1], [0, 1], [0, 2]]
        model = MarkovChainRecommender(sequences, num_locations=3, order=1, smoothing=0.0)
        scores = model.score_all([0])
        assert scores[1] == pytest.approx(2 / 3)
        assert scores[2] == pytest.approx(1 / 3)

    def test_unseen_context_backs_off_to_popularity(self):
        sequences = [[0, 1], [1, 1]]
        model = MarkovChainRecommender(sequences, num_locations=4, order=1)
        scores = model.score_all([3])  # 3 never seen as context
        assert np.argmax(scores) == 1  # most popular overall


class TestHigherOrder:
    def test_order_two_disambiguates(self):
        # After (0, 1) -> 2; after (3, 1) -> 4. Order-1 alone cannot tell.
        sequences = [[0, 1, 2]] * 3 + [[3, 1, 4]] * 3
        model = MarkovChainRecommender(sequences, num_locations=5, order=2)
        assert np.argmax(model.score_all([0, 1])) == 2
        assert np.argmax(model.score_all([3, 1])) == 4

    def test_backoff_to_lower_order(self):
        sequences = [[0, 1, 2]]
        model = MarkovChainRecommender(sequences, num_locations=4, order=2)
        # Context (3, 1) unseen at order 2; backs off to context (1,).
        assert np.argmax(model.score_all([3, 1])) == 2


class TestValidation:
    def test_rejects_order_zero(self):
        with pytest.raises(ConfigError):
            MarkovChainRecommender([[0, 1]], num_locations=2, order=0)

    def test_rejects_out_of_range_tokens(self):
        with pytest.raises(DataError):
            MarkovChainRecommender([[9]], num_locations=2)

    def test_smoothing_keeps_everything_scoreable(self):
        model = MarkovChainRecommender([[0, 1]], num_locations=3, order=1)
        scores = model.score_all([0])
        assert np.all(scores > 0)

    def test_recommend_interface(self):
        model = MarkovChainRecommender([[0, 1, 2]], num_locations=3, order=1)
        results = model.recommend([0], top_k=2)
        assert len(results) == 2
        assert results[0][0] == 1
