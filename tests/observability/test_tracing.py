"""Span nesting, parenting, retention, and JSONL export."""

import json
import threading

import pytest

from repro.observability.tracing import JsonlSpanSink, Span, Tracer


class TestSpanLifecycle:
    def test_span_records_duration_and_attributes(self):
        tracer = Tracer()
        with tracer.span("work", step=3) as span:
            assert not span.finished
        assert span.finished
        assert span.duration_seconds >= 0.0
        assert span.attributes == {"step": 3}

    def test_ids_are_monotonic(self):
        tracer = Tracer()
        for _ in range(5):
            with tracer.span("a"):
                pass
        ids = [span.span_id for span in tracer.finished_spans]
        assert ids == sorted(ids)
        assert len(set(ids)) == 5

    def test_nesting_records_parent_links(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                with tracer.span("leaf") as leaf:
                    pass
        assert outer.parent_id is None
        assert inner.parent_id == outer.span_id
        assert leaf.parent_id == inner.span_id

    def test_current_span_tracks_stack(self):
        tracer = Tracer()
        assert tracer.current_span is None
        with tracer.span("outer") as outer:
            assert tracer.current_span is outer
            with tracer.span("inner") as inner:
                assert tracer.current_span is inner
            assert tracer.current_span is outer
        assert tracer.current_span is None

    def test_stack_pops_on_exception(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("failing"):
                raise RuntimeError("boom")
        assert tracer.current_span is None
        (span,) = tracer.finished_spans
        assert span.finished

    def test_sibling_spans_share_parent(self):
        tracer = Tracer()
        with tracer.span("step") as step:
            for stage in ("sample", "group"):
                with tracer.span(f"stage.{stage}"):
                    pass
        children = [s for s in tracer.finished_spans if s.name != "step"]
        assert all(child.parent_id == step.span_id for child in children)

    def test_add_completed_records_finished_span(self):
        tracer = Tracer()
        span = tracer.add_completed("batch", 0.25, batch_size=8)
        assert span.finished
        assert span.duration_seconds == 0.25
        assert tracer.spans_named("batch") == [span]

    def test_threads_get_independent_stacks(self):
        tracer = Tracer()
        errors = []

        def worker(name):
            try:
                with tracer.span(name) as outer:
                    with tracer.span(f"{name}.child") as child:
                        assert child.parent_id == outer.span_id
                    assert outer.parent_id is None
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(f"t{i}",)) for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(tracer.finished_spans) == 16
        ids = [span.span_id for span in tracer.finished_spans]
        assert len(set(ids)) == 16


class TestRetentionAndExport:
    def test_max_kept_drops_oldest(self):
        tracer = Tracer(max_kept=3)
        for index in range(6):
            tracer.add_completed(f"s{index}", 0.0)
        names = [span.name for span in tracer.finished_spans]
        assert names == ["s3", "s4", "s5"]

    def test_rejects_negative_max_kept(self):
        with pytest.raises(ValueError):
            Tracer(max_kept=-1)

    def test_export_jsonl_round_trips(self, tmp_path):
        tracer = Tracer()
        with tracer.span("outer", step=1):
            with tracer.span("inner"):
                pass
        path = tmp_path / "trace.jsonl"
        assert tracer.export_jsonl(path) == 2
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        by_name = {line["name"]: line for line in lines}
        assert by_name["inner"]["parent_id"] == by_name["outer"]["span_id"]
        assert by_name["outer"]["attributes"] == {"step": 1}

    def test_jsonl_sink_streams_each_span(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        sink = JsonlSpanSink(path)
        tracer = Tracer(sink=sink)
        with tracer.span("a"):
            pass
        tracer.add_completed("b", 0.1)
        sink.close()
        names = [json.loads(line)["name"] for line in path.read_text().splitlines()]
        assert names == ["a", "b"]

    def test_span_as_dict_is_json_serializable(self):
        span = Span(
            name="x", span_id=1, parent_id=None, start_seconds=0.0,
            duration_seconds=0.5, attributes={"k": "v"},
        )
        assert json.loads(json.dumps(span.as_dict()))["name"] == "x"
