"""The metrics registry: instruments, thread safety, and export formats."""

import json
import threading

import pytest

from repro.observability.metrics import (
    MetricsRegistry,
    escape_label_value,
)


class TestCounter:
    def test_inc_and_value(self):
        counter = MetricsRegistry().counter("c")
        counter.inc()
        counter.inc(2.5)
        assert counter.value() == 3.5

    def test_labelled_children_are_independent(self):
        counter = MetricsRegistry().counter("c")
        counter.inc(status="ok")
        counter.inc(status="ok")
        counter.inc(status="error")
        assert counter.value(status="ok") == 2
        assert counter.value(status="error") == 1
        assert counter.total() == 3

    def test_rejects_negative_increment(self):
        counter = MetricsRegistry().counter("c")
        with pytest.raises(ValueError):
            counter.inc(-1)


class TestGauge:
    def test_set_inc_value(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(5)
        gauge.inc(-2)
        assert gauge.value() == 3

    def test_set_info_replaces_children(self):
        gauge = MetricsRegistry().gauge("info")
        gauge.set_info(version="1")
        gauge.set_info(version="2", path="m.npz")
        assert gauge.value(version="1") == 0.0
        assert gauge.value(version="2", path="m.npz") == 1.0


class TestHistogram:
    def test_stats_and_count(self):
        histogram = MetricsRegistry().histogram("h")
        for value in (0.01, 0.02, 0.03):
            histogram.observe(value)
        stats = histogram.stats()
        assert stats["count"] == 3
        assert stats["min"] == 0.01
        assert stats["max"] == 0.03
        assert stats["mean"] == pytest.approx(0.02)

    def test_quantiles(self):
        histogram = MetricsRegistry().histogram("h")
        for value in range(1, 101):
            histogram.observe(value / 100.0)
        assert histogram.quantile(0.5) == pytest.approx(0.505, abs=0.01)
        assert histogram.quantile(0.95) == pytest.approx(0.95, abs=0.011)
        assert histogram.quantile(0.0) == 0.01
        assert histogram.quantile(1.0) == 1.0

    def test_quantiles_exact_on_equal_observations(self):
        # A run of identical values must yield that exact value at every
        # q — no interpolation ulp-wobble — so p50 <= p95 always holds.
        histogram = MetricsRegistry().histogram("h")
        value = 0.0316227766016838  # an awkward float
        for _ in range(7):
            histogram.observe(value)
        for q in (0.0, 0.25, 0.5, 0.95, 1.0):
            assert histogram.quantile(q) == value

    def test_quantile_of_empty_series_is_nan(self):
        histogram = MetricsRegistry().histogram("h")
        assert histogram.quantile(0.5) != histogram.quantile(0.5)  # NaN

    def test_quantile_rejects_out_of_range(self):
        histogram = MetricsRegistry().histogram("h")
        with pytest.raises(ValueError):
            histogram.quantile(1.5)

    def test_le_bucket_semantics_are_cumulative(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", buckets=(0.1, 1.0))
        histogram.observe(0.1)   # le="0.1" (boundary is inclusive)
        histogram.observe(0.5)   # le="1"
        histogram.observe(100.0)  # +Inf only
        text = registry.render_prometheus()
        assert 'h_bucket{le="0.1"} 1' in text
        assert 'h_bucket{le="1"} 2' in text
        assert 'h_bucket{le="+Inf"} 3' in text
        assert "h_count 3" in text


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_type_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x")

    def test_thread_safety_under_contention(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits")
        histogram = registry.histogram("lat")
        per_thread, num_threads = 500, 8

        def worker(index):
            for i in range(per_thread):
                counter.inc(worker=str(index % 2))
                histogram.observe(i / per_thread)

        threads = [
            threading.Thread(target=worker, args=(i,))
            for i in range(num_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.total() == per_thread * num_threads
        assert histogram.count() == per_thread * num_threads


class TestPrometheusText:
    def test_golden_output(self):
        registry = MetricsRegistry()
        requests = registry.counter("req_total", "Requests by status")
        requests.inc(3, status="ok")
        version = registry.gauge("model_version", "Loaded model version")
        version.set(2)
        latency = registry.histogram("lat_seconds", "Latency", buckets=(0.5,))
        latency.observe(0.25)
        assert registry.render_prometheus() == (
            "# HELP lat_seconds Latency\n"
            "# TYPE lat_seconds histogram\n"
            'lat_seconds_bucket{le="0.5"} 1\n'
            'lat_seconds_bucket{le="+Inf"} 1\n'
            "lat_seconds_sum 0.25\n"
            "lat_seconds_count 1\n"
            "# HELP model_version Loaded model version\n"
            "# TYPE model_version gauge\n"
            "model_version 2\n"
            "# HELP req_total Requests by status\n"
            "# TYPE req_total counter\n"
            'req_total{status="ok"} 3\n'
        )

    def test_label_values_with_quotes_and_newlines_are_escaped(self):
        registry = MetricsRegistry()
        counter = registry.counter("poi_hits")
        counter.inc(poi='cafe "le\\chat"\nparis')
        text = registry.render_prometheus()
        assert 'poi_hits{poi="cafe \\"le\\\\chat\\"\\nparis"} 1' in text
        # Every sample stays one line: the newline never leaks through.
        for line in text.splitlines():
            assert line.startswith(("#", "poi_hits{"))

    def test_escape_order_backslash_first(self):
        # A literal backslash-n must not collide with an escaped newline.
        assert escape_label_value("\\n") == "\\\\n"
        assert escape_label_value("\n") == "\\n"

    def test_help_text_newlines_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c", "line one\nline two")
        assert "# HELP c line one\\nline two" in registry.render_prometheus()


class TestJsonExports:
    def test_to_jsonl_one_object_per_sample(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(status="ok")
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        lines = [
            json.loads(line)
            for line in registry.to_jsonl().splitlines()
        ]
        metrics = {line["metric"] for line in lines}
        assert metrics == {"c", "h_bucket", "h_sum", "h_count"}
        (sample,) = [line for line in lines if line["metric"] == "c"]
        assert sample["labels"] == {"status": "ok"}
        assert sample["value"] == 1.0

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.gauge("g", "help text").set(4)
        snapshot = registry.snapshot()
        assert snapshot["g"]["type"] == "gauge"
        assert snapshot["g"]["help"] == "help text"
        assert snapshot["g"]["samples"] == [
            {"suffix": "", "labels": {}, "value": 4.0}
        ]

    def test_write_both_formats(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        prom = tmp_path / "m.prom"
        jsonl = tmp_path / "m.jsonl"
        registry.write(prom)
        registry.write(jsonl, format="jsonl")
        assert "# TYPE c counter" in prom.read_text()
        assert json.loads(jsonl.read_text())["metric"] == "c"
        with pytest.raises(ValueError):
            registry.write(tmp_path / "m.x", format="xml")
