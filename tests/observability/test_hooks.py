"""The Observability bundle, profiling hooks, and deprecated aliases."""

import json
import warnings

import pytest

from repro.observability import (
    MetricsRegistry,
    Observability,
    Observer,
    StageProfiler,
    Tracer,
    peak_rss_bytes,
    with_observability,
)


class TestStageProfiler:
    def test_record_and_summary(self):
        profiler = StageProfiler()
        profiler.record("sample", 0.1)
        profiler.record("sample", 0.3)
        profiler.record("noise", 0.2)
        summary = profiler.summary()
        assert summary["sample"]["count"] == 2
        assert summary["sample"]["total_seconds"] == pytest.approx(0.4)
        assert summary["sample"]["mean_seconds"] == pytest.approx(0.2)
        assert summary["sample"]["max_seconds"] == pytest.approx(0.3)
        assert profiler.total_seconds("noise") == pytest.approx(0.2)
        assert profiler.total_seconds("missing") == 0.0

    def test_stage_context_times_block(self):
        profiler = StageProfiler()
        with profiler.stage("work"):
            pass
        assert profiler.summary()["work"]["count"] == 1

    def test_peak_rss_is_positive_when_reported(self):
        rss = peak_rss_bytes()
        assert rss is None or rss > 1024 * 1024  # at least a megabyte


class TestWithObservability:
    def test_defaults_build_all_components(self):
        obs = with_observability()
        assert isinstance(obs.tracer, Tracer)
        assert isinstance(obs.metrics, MetricsRegistry)
        assert isinstance(obs.profiler, StageProfiler)

    def test_span_feeds_tracer_and_profiler(self):
        obs = with_observability()
        with obs.span("region", step=1) as span:
            pass
        assert span.attributes == {"step": 1}
        assert obs.tracer.spans_named("region")
        assert obs.profiler.summary()["region"]["count"] == 1

    def test_span_degrades_without_tracer(self):
        profiler = StageProfiler()
        obs = Observability(profiler=profiler)
        with obs.span("region") as span:
            assert span is None
        assert profiler.summary()["region"]["count"] == 1
        with Observability().span("region") as span:
            assert span is None  # full no-op

    def test_record_span_posthoc(self):
        obs = with_observability()
        obs.record_span("batch", 0.5, batch_size=4)
        (span,) = obs.tracer.spans_named("batch")
        assert span.duration_seconds == 0.5
        assert obs.profiler.total_seconds("batch") == 0.5

    def test_trace_jsonl_streams_and_close_flushes(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        obs = with_observability(trace_jsonl=path)
        with obs.span("a"):
            pass
        obs.close()
        assert json.loads(path.read_text().splitlines()[0])["name"] == "a"

    def test_close_writes_metrics_file(self, tmp_path):
        path = tmp_path / "metrics.prom"
        with with_observability(metrics_path=path) as obs:
            obs.metrics.counter("c").inc()
        assert "# TYPE c counter" in path.read_text()

    def test_close_writes_metrics_jsonl(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        obs = with_observability(metrics_path=path, metrics_format="jsonl")
        obs.metrics.counter("c").inc()
        obs.close()
        assert json.loads(path.read_text())["metric"] == "c"

    def test_shared_registry_is_reused(self):
        registry = MetricsRegistry()
        obs = with_observability(metrics=registry)
        assert obs.metrics is registry


class TestDeprecatedAliases:
    def test_step_observer_subclass_warns(self):
        from repro.core.engine import StepObserver

        with pytest.warns(DeprecationWarning, match="StepObserver"):

            class _Legacy(StepObserver):
                pass

    def test_step_observer_instantiation_warns(self):
        from repro.core.engine.observers import StepObserver

        with pytest.warns(DeprecationWarning, match="StepObserver"):
            StepObserver()

    def test_serving_observer_subclass_warns(self):
        from repro.serving.metrics import ServingObserver

        with pytest.warns(DeprecationWarning, match="ServingObserver"):

            class _Legacy(ServingObserver):
                pass

    def test_unified_observer_is_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")

            class _Fresh(Observer):
                pass

            _Fresh()

    def test_legacy_subclasses_still_work_as_observers(self):
        from repro.core.engine import StepObserver

        with pytest.warns(DeprecationWarning):

            class _Legacy(StepObserver):
                def __init__(self):
                    self.steps = []

                def on_step_end(self, result, engine):
                    self.steps.append(result)

        legacy = _Legacy()
        assert isinstance(legacy, Observer)
        legacy.on_step_end("result", None)
        assert legacy.steps == ["result"]

    def test_cli_metrics_jsonl_flag_warns_and_maps(self):
        from repro.cli import _build_parser

        parser = _build_parser()
        with pytest.warns(DeprecationWarning, match="--metrics-out"):
            args = parser.parse_args(
                ["train", "--synthetic", "--out", "m.npz",
                 "--metrics-jsonl", "m.jsonl"]
            )
        assert args.metrics_jsonl == "m.jsonl"
