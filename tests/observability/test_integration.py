"""Observability wired through the engine, evaluator, and serving layers.

The load-bearing contract here is *passivity*: a training run with a full
observability bundle attached must be bit-identical — same parameters,
same ledger — to the same run without one.
"""

import numpy as np
import pytest

import repro
from repro.core.config import PLPConfig
from repro.core.engine.engine import STAGE_NAMES
from repro.core.trainer import PrivateLocationPredictor
from repro.observability import with_observability


def _fast_config(**overrides) -> PLPConfig:
    base = dict(
        embedding_dim=8,
        num_negatives=4,
        sampling_probability=0.2,
        noise_multiplier=2.0,
        epsilon=50.0,  # max_steps is the binding stop
        grouping_factor=3,
        max_steps=3,
    )
    base.update(overrides)
    return PLPConfig(**base)


class TestEngineSpans:
    @pytest.fixture(scope="class")
    def traced_run(self, split_dataset):
        train, _ = split_dataset
        obs = with_observability()
        trainer = PrivateLocationPredictor(
            _fast_config(), rng=11, observability=obs
        )
        history = trainer.fit(train)
        return obs, trainer, history

    def test_one_step_span_per_step(self, traced_run):
        obs, _, history = traced_run
        steps = obs.tracer.spans_named("engine.step")
        assert len(steps) == len(history)
        assert all(span.parent_id is None for span in steps)
        assert [span.attributes["step"] for span in steps] == list(
            range(1, len(history) + 1)
        )

    def test_every_stage_nests_under_its_step(self, traced_run):
        obs, _, history = traced_run
        step_ids = {s.span_id for s in obs.tracer.spans_named("engine.step")}
        for stage in STAGE_NAMES:
            spans = obs.tracer.spans_named(f"engine.stage.{stage}")
            assert len(spans) == len(history)
            assert all(span.parent_id in step_ids for span in spans)

    def test_local_train_span_carries_bucket_count(self, traced_run):
        obs, _, _ = traced_run
        for span in obs.tracer.spans_named("engine.stage.local_train"):
            assert span.attributes["num_buckets"] >= 1

    def test_engine_metrics_populated(self, traced_run):
        obs, _, history = traced_run
        metrics = obs.metrics
        assert metrics.counter("repro_engine_steps_total").total() == len(history)
        assert metrics.counter("repro_engine_buckets_total").total() > 0
        assert metrics.histogram("repro_engine_step_seconds").count() == len(history)
        for stage in STAGE_NAMES:
            assert (
                metrics.histogram("repro_engine_stage_seconds").count(stage=stage)
                == len(history)
            )
        assert metrics.histogram("repro_engine_bucket_seconds").count() > 0
        assert metrics.gauge("repro_engine_epsilon_spent").value() > 0

    def test_profiler_covers_every_stage(self, traced_run):
        obs, _, history = traced_run
        summary = obs.profiler.summary()
        for stage in STAGE_NAMES:
            assert summary[f"engine.stage.{stage}"]["count"] == len(history)


class TestParallelExecutorSpans:
    def test_spans_and_bucket_timings_under_process_pool(self, split_dataset):
        train, _ = split_dataset
        obs = with_observability()
        trainer = PrivateLocationPredictor(
            _fast_config(max_steps=2),
            rng=11,
            executor="parallel",
            workers=2,
            observability=obs,
        )
        history = trainer.fit(train)
        step_ids = {s.span_id for s in obs.tracer.spans_named("engine.step")}
        assert len(step_ids) == len(history)
        # Stage spans are recorded in the driver process, so parenting
        # holds even though buckets run in workers...
        for stage in STAGE_NAMES:
            spans = obs.tracer.spans_named(f"engine.stage.{stage}")
            assert all(span.parent_id in step_ids for span in spans)
        # ...and per-bucket wall times still travel back on the updates.
        bucket_seconds = obs.metrics.histogram("repro_engine_bucket_seconds")
        assert bucket_seconds.count() > 0
        assert bucket_seconds.stats()["min"] > 0.0


class TestBitIdentity:
    def test_training_identical_with_and_without_observability(
        self, split_dataset
    ):
        train, _ = split_dataset
        plain = PrivateLocationPredictor(_fast_config(), rng=11)
        plain.fit(train)
        obs = with_observability()
        traced = PrivateLocationPredictor(
            _fast_config(), rng=11, observability=obs
        )
        traced.fit(train)

        # Same parameters, bit for bit.
        for key in plain.model.params:
            assert np.array_equal(
                plain.model.params[key], traced.model.params[key]
            ), key
        # Same ledger, entry by entry.
        assert len(plain.ledger) == len(traced.ledger)
        for a, b in zip(plain.ledger.entries, traced.ledger.entries):
            assert a == b
        assert (
            plain.ledger.cumulative_budget_spent()
            == traced.ledger.cumulative_budget_spent()
        )
        # The traced run did record telemetry.
        assert obs.tracer.spans_named("engine.step")


class TestFacadeWiring:
    def test_train_and_evaluate_feed_one_bundle(self, split_dataset):
        train, holdout = split_dataset
        obs = with_observability()
        model = repro.train(
            _fast_config(), train, rng=11, with_observability=obs
        )
        result = repro.evaluate(model, holdout, with_observability=obs)

        assert obs.metrics.counter("repro_engine_steps_total").total() > 0
        query_seconds = obs.metrics.histogram("repro_eval_query_seconds")
        assert query_seconds.count() == result.num_cases
        assert (
            obs.metrics.counter("repro_eval_cases_total").total()
            == result.num_cases
        )
        assert obs.tracer.spans_named("eval.evaluate")
        # One scrape shows both layers.
        text = obs.metrics.render_prometheus()
        assert "repro_engine_step_seconds" in text
        assert "repro_eval_query_seconds" in text
